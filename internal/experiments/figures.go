package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/stream"
)

// Fig6 summarises the sea-surface-temperature signal of Figure 6 (the
// paper plots the raw series; DumpSST writes it as CSV for plotting).
func Fig6(cfg Config) (*Table, error) {
	pts := gen.SeaSurfaceTemperature()
	lo, hi := gen.Range(pts, 0)
	mean := 0.0
	plateau := 0
	for j, p := range pts {
		mean += p.X[0]
		if j > 0 && p.X[0] == pts[j-1].X[0] {
			plateau++
		}
	}
	mean /= float64(len(pts))
	return &Table{
		ID:      "fig6",
		Title:   "sea surface temperature signal (synthetic stand-in for the TAO buoy data)",
		XLabel:  "statistic",
		Columns: []string{"value"},
		Rows: []Row{
			{X: "points", Values: []float64{float64(len(pts))}},
			{X: "sampling interval (min)", Values: []float64{pts[1].T - pts[0].T}},
			{X: "min (°C)", Values: []float64{lo}},
			{X: "max (°C)", Values: []float64{hi}},
			{X: "range (°C)", Values: []float64{hi - lo}},
			{X: "mean (°C)", Values: []float64{mean}},
			{X: "repeated consecutive values", Values: []float64{float64(plateau)}},
		},
		Notes: []string{"use `plabench -dump-sst <file>` (or DumpSST) to emit the full series as CSV"},
	}, nil
}

// DumpSST writes the Figure 6 series as CSV rows "t,x".
func DumpSST(w io.Writer) error {
	return stream.WritePoints(w, gen.SeaSurfaceTemperature())
}

// Fig7 regenerates Figure 7: compression ratio vs precision width (as a
// percentage of the signal range) on the sea-surface-temperature signal,
// for the cache, linear, swing and slide filters.
func Fig7(cfg Config) (*Table, error) {
	return sstSweepTable(
		"fig7",
		"compression ratio vs precision width, sea surface temperature",
		"ratio",
		CompressionRatio,
		func(v, rng float64) float64 { return v },
	)
}

// Fig8 regenerates Figure 8: average error (as a percentage of the signal
// range) vs precision width on the sea-surface-temperature signal.
func Fig8(cfg Config) (*Table, error) {
	return sstSweepTable(
		"fig8",
		"average error (% of range) vs precision width, sea surface temperature",
		"avg err %",
		AverageError,
		func(v, rng float64) float64 { return 100 * v / rng },
	)
}

func sstSweepTable(id, title, ylabel string,
	metric func(name string, signal []core.Point, eps []float64) (float64, error),
	post func(v, rng float64) float64,
) (*Table, error) {
	signal := gen.SeaSurfaceTemperature()
	lo, hi := gen.Range(signal, 0)
	rng := hi - lo
	t := &Table{
		ID:      id,
		Title:   title,
		XLabel:  "precision width (% of range)",
		Columns: append([]string(nil), FilterNames...),
	}
	for _, frac := range sstEpsSweep {
		eps := []float64{frac * rng}
		row := Row{X: fmt.Sprintf("%.3f", 100*frac)}
		for _, name := range FilterNames {
			v, err := metric(name, signal, eps)
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, post(v, rng))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 regenerates Figure 9: compression ratio vs the probability p of a
// per-step decrease (degree of monotonicity), with the step magnitude
// fixed at 400 % of the precision width.
func Fig9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "effect of the degree of monotonicity (x = 400% of ε, random walk)",
		XLabel:  "P(decrease)",
		Columns: append([]string(nil), FilterNames...),
	}
	const eps = 1.0
	for pi := 0; pi <= 10; pi++ {
		p := float64(pi) / 20 // 0, 0.05, …, 0.5
		signal := gen.RandomWalk(gen.WalkConfig{
			N: cfg.walkN(), P: p, MaxDelta: 4 * eps, Seed: 900 + uint64(pi) + cfg.Seed,
		})
		row := Row{X: fmt.Sprintf("%.2f", p)}
		for _, name := range FilterNames {
			v, err := CompressionRatio(name, signal, []float64{eps})
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10 regenerates Figure 10: compression ratio vs the maximum step
// magnitude x (as a percentage of the precision width), with p = 0.5.
func Fig10(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "effect of the magnitude of change per data point (p = 0.5, random walk)",
		XLabel:  "max delta (% of ε)",
		Columns: append([]string(nil), FilterNames...),
	}
	const eps = 1.0
	for i, pct := range []float64{10, 31.6, 100, 316, 1000, 3162, 10000} {
		signal := gen.RandomWalk(gen.WalkConfig{
			N: cfg.walkN(), P: 0.5, MaxDelta: pct / 100 * eps, Seed: 1000 + uint64(i) + cfg.Seed,
		})
		row := Row{X: fmt.Sprintf("%.1f", pct)}
		for _, name := range FilterNames {
			v, err := CompressionRatio(name, signal, []float64{eps})
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig11 regenerates Figure 11: compression ratio vs the number of
// (independent) dimensions.
func Fig11(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "effect of the number of dimensions (independent dims, p = 0.5, x = 400% of ε)",
		XLabel:  "dims",
		Columns: append([]string(nil), FilterNames...),
	}
	const eps = 1.0
	for d := 1; d <= 10; d++ {
		signal := gen.MultiWalk(gen.MultiWalkConfig{
			WalkConfig: gen.WalkConfig{
				N: cfg.walkN(), P: 0.5, MaxDelta: 4 * eps, Seed: 1100 + uint64(d) + cfg.Seed,
			},
			Dims:        d,
			Correlation: 0,
		})
		row := Row{X: fmt.Sprintf("%d", d)}
		for _, name := range FilterNames {
			v, err := CompressionRatio(name, signal, core.UniformEpsilon(d, eps))
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 regenerates Figure 12: compression ratio vs the correlation
// between the dimensions of a 5-dimensional signal, plus the paper's
// joint-vs-independent break-even analysis (Section 5.4): compressing the
// dimensions independently multiplies the single-dimension ratio by
// (d+1)/2d to pay for the duplicated time fields, and joint compression
// wins once its ratio exceeds that product.
func Fig12(cfg Config) (*Table, error) {
	const (
		d   = 5
		eps = 1.0
	)
	t := &Table{
		ID:      "fig12",
		Title:   "effect of the correlation between dimensions (d = 5, p = 0.5, x = 400% of ε)",
		XLabel:  "correlation",
		Columns: append([]string(nil), FilterNames...),
	}
	for i := 1; i <= 10; i++ {
		rho := float64(i) / 10
		signal := gen.MultiWalk(gen.MultiWalkConfig{
			WalkConfig: gen.WalkConfig{
				N: cfg.walkN(), P: 0.5, MaxDelta: 4 * eps, Seed: 1200 + uint64(i) + cfg.Seed,
			},
			Dims:        d,
			Correlation: rho,
		})
		row := Row{X: fmt.Sprintf("%.1f", rho)}
		for _, name := range FilterNames {
			v, err := CompressionRatio(name, signal, core.UniformEpsilon(d, eps))
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, v)
		}
		t.Rows = append(t.Rows, row)
	}
	// Break-even: the slide ratio on a single dimension of the same walk,
	// scaled by (d+1)/2d.
	single := gen.RandomWalk(gen.WalkConfig{
		N: cfg.walkN(), P: 0.5, MaxDelta: 4 * eps, Seed: 1201 + cfg.Seed,
	})
	sr, err := CompressionRatio("slide", single, []float64{eps})
	if err != nil {
		return nil, err
	}
	threshold := sr * float64(d+1) / float64(2*d)
	cross := math.NaN()
	for _, r := range t.Rows {
		if r.Values[3] >= threshold { // slide column
			if v, err := parseX(r.X); err == nil {
				cross = v
			}
			break
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-dim slide ratio %.2f ⇒ independent-compression equivalent %.2f ((d+1)/2d overhead)", sr, threshold))
	if !math.IsNaN(cross) {
		t.Notes = append(t.Notes,
			fmt.Sprintf("joint compression overtakes independent at correlation ≈ %.1f (paper: ≈ 0.7)", cross))
	} else {
		t.Notes = append(t.Notes, "joint compression did not overtake independent in this sweep")
	}
	return t, nil
}

func parseX(s string) (float64, error) {
	var v float64
	_, err := fmt.Sscanf(s, "%f", &v)
	return v, err
}
