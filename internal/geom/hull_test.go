package geom

import (
	"math/rand"
	"testing"
)

// bruteUpperHull computes the upper hull of pts (sorted by strictly
// increasing T) by running the full monotone-chain algorithm from scratch.
func bruteUpperHull(pts []P) []P {
	var up []P
	for _, p := range pts {
		for len(up) >= 2 && cross(up[len(up)-2], up[len(up)-1], p) >= 0 {
			up = up[:len(up)-1]
		}
		up = append(up, p)
	}
	return up
}

func bruteLowerHull(pts []P) []P {
	var lo []P
	for _, p := range pts {
		for len(lo) >= 2 && cross(lo[len(lo)-2], lo[len(lo)-1], p) <= 0 {
			lo = lo[:len(lo)-1]
		}
		lo = append(lo, p)
	}
	return lo
}

func TestHullTriangle(t *testing.T) {
	var h Hull
	h.Append(P{0, 0})
	h.Append(P{1, 2})
	h.Append(P{2, 0})
	if got := len(h.Upper()); got != 3 {
		t.Fatalf("upper chain has %d vertices, want 3", got)
	}
	if got := len(h.Lower()); got != 2 {
		t.Fatalf("lower chain has %d vertices, want 2 (peak is interior to the lower chain)", got)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
}

func TestHullCollinearPointsRemoved(t *testing.T) {
	var h Hull
	for i := 0; i < 10; i++ {
		h.Append(P{float64(i), 2 * float64(i)})
	}
	if got := len(h.Upper()); got != 2 {
		t.Fatalf("upper chain of a straight line has %d vertices, want 2", got)
	}
	if got := len(h.Lower()); got != 2 {
		t.Fatalf("lower chain of a straight line has %d vertices, want 2", got)
	}
}

func TestHullFirstLast(t *testing.T) {
	var h Hull
	h.Append(P{0, 5})
	h.Append(P{1, -1})
	h.Append(P{4, 2})
	if h.First() != (P{0, 5}) {
		t.Fatalf("First = %v", h.First())
	}
	if h.Last() != (P{4, 2}) {
		t.Fatalf("Last = %v", h.Last())
	}
}

func TestHullReset(t *testing.T) {
	var h Hull
	h.Append(P{0, 0})
	h.Append(P{1, 1})
	h.Reset()
	if h.Len() != 0 || len(h.Upper()) != 0 || len(h.Lower()) != 0 {
		t.Fatal("Reset did not empty the hull")
	}
	h.Append(P{5, 5})
	if h.Len() != 1 || h.First() != (P{5, 5}) {
		t.Fatal("hull unusable after Reset")
	}
}

// Property: the incremental hull matches a from-scratch recomputation, and
// every input point lies on or inside the hull band.
func TestHullMatchesBruteForceAndContainsPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		pts := make([]P, n)
		tm := 0.0
		for i := range pts {
			tm += 0.1 + rng.Float64()
			pts[i] = P{tm, rng.NormFloat64() * 10}
		}
		var h Hull
		for _, p := range pts {
			h.Append(p)
		}
		wantUp := bruteUpperHull(pts)
		wantLo := bruteLowerHull(pts)
		if !eqPts(h.Upper(), wantUp) {
			t.Fatalf("trial %d: upper hull mismatch\n got %v\nwant %v", trial, h.Upper(), wantUp)
		}
		if !eqPts(h.Lower(), wantLo) {
			t.Fatalf("trial %d: lower hull mismatch\n got %v\nwant %v", trial, h.Lower(), wantLo)
		}
		// Containment: every point is below the upper chain and above the
		// lower chain (within float slack).
		for _, p := range pts {
			if ub, ok := chainEval(h.Upper(), p.T); ok && p.X > ub+1e-9 {
				t.Fatalf("trial %d: point %v above upper chain (%v)", trial, p, ub)
			}
			if lb, ok := chainEval(h.Lower(), p.T); ok && p.X < lb-1e-9 {
				t.Fatalf("trial %d: point %v below lower chain (%v)", trial, p, lb)
			}
		}
	}
}

// chainEval linearly interpolates a convex chain at time t.
func chainEval(chain []P, t float64) (float64, bool) {
	if len(chain) == 0 || t < chain[0].T || t > chain[len(chain)-1].T {
		return 0, false
	}
	if len(chain) == 1 {
		return chain[0].X, true
	}
	for i := 1; i < len(chain); i++ {
		if t <= chain[i].T {
			l, ok := Through(chain[i-1], chain[i])
			if !ok {
				return 0, false
			}
			return l.Eval(t), true
		}
	}
	return chain[len(chain)-1].X, true
}

func eqPts(a, b []P) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkHullAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]P, 4096)
	tm := 0.0
	for i := range pts {
		tm += 1
		pts[i] = P{tm, rng.NormFloat64()}
	}
	b.ResetTimer()
	var h Hull
	for i := 0; i < b.N; i++ {
		if i%len(pts) == 0 {
			h.Reset()
		}
		h.Append(pts[i%len(pts)])
	}
}
