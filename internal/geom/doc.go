// Package geom provides the small computational-geometry substrate needed
// by the slide filter of Elmeleegy et al. (VLDB 2009): lines in the t–x
// plane, an incremental convex hull over points arriving in time order
// (Section 4.1 of the paper), and tangent searches from an external point
// to a convex chain (Lemma 4.3 and the optimization it motivates).
//
// Everything operates on float64 and is allocation-conscious: the hull
// reuses its backing arrays across filtering intervals, and tangent
// searches never copy the chain.
package geom
