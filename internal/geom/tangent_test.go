package geom

import (
	"math/rand"
	"testing"
)

func TestMinSlopeThroughBasic(t *testing.T) {
	pivot := P{2, 1}
	anchors := []P{{0, 0}, {1, 0}} // with shift −1 these become floors at −1
	a, idx := MinSlopeThrough(pivot, anchors, -1)
	if idx != 0 {
		t.Fatalf("min-slope anchor index = %d, want 0", idx)
	}
	if a != 1 {
		t.Fatalf("min slope = %v, want 1", a)
	}
}

func TestMaxSlopeThroughBasic(t *testing.T) {
	pivot := P{2, -1}
	anchors := []P{{0, 0}, {1, 0}}
	a, idx := MaxSlopeThrough(pivot, anchors, +1)
	if idx != 0 {
		t.Fatalf("max-slope anchor index = %d, want 0", idx)
	}
	if a != -1 {
		t.Fatalf("max slope = %v, want -1", a)
	}
}

func TestSlopeThroughEmpty(t *testing.T) {
	if _, idx := MinSlopeThrough(P{1, 1}, nil, 0); idx != -1 {
		t.Fatalf("empty anchors: idx = %d, want -1", idx)
	}
	if _, idx := MaxSlopeThrough(P{1, 1}, nil, 0); idx != -1 {
		t.Fatalf("empty anchors: idx = %d, want -1", idx)
	}
	if _, idx := MinSlopeThroughChain(P{1, 1}, nil, 0); idx != -1 {
		t.Fatalf("empty chain: idx = %d, want -1", idx)
	}
	if _, idx := MaxSlopeThroughChain(P{1, 1}, nil, 0); idx != -1 {
		t.Fatalf("empty chain: idx = %d, want -1", idx)
	}
}

// Property: the minimum-slope line through the pivot keeps every shifted
// anchor on or below it (it is the upper tangent), and the maximum-slope
// line keeps every shifted anchor on or above it.
func TestTangentSidedness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		anchors := make([]P, n)
		tm := 0.0
		for i := range anchors {
			tm += 0.1 + rng.Float64()
			anchors[i] = P{tm, rng.NormFloat64() * 5}
		}
		pivot := P{tm + 1 + rng.Float64(), rng.NormFloat64() * 5}
		eps := rng.Float64() + 0.01

		aMin, _ := MinSlopeThrough(pivot, anchors, -eps)
		lMin := WithSlope(aMin, pivot)
		for _, q := range anchors {
			if lMin.Eval(q.T) < q.X-eps-1e-9 {
				t.Fatalf("trial %d: min-slope line dips below a floor point", trial)
			}
		}
		aMax, _ := MaxSlopeThrough(pivot, anchors, +eps)
		lMax := WithSlope(aMax, pivot)
		for _, q := range anchors {
			if lMax.Eval(q.T) > q.X+eps+1e-9 {
				t.Fatalf("trial %d: max-slope line rises above a ceiling point", trial)
			}
		}
	}
}

// Property: scanning only the hull chain gives the same tangent slope as
// scanning every point (Lemma 4.3), and the ternary-search chain variant
// agrees with the linear chain scan.
func TestTangentHullEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(80)
		pts := make([]P, n)
		tm := 0.0
		for i := range pts {
			tm += 0.1 + rng.Float64()
			pts[i] = P{tm, rng.NormFloat64() * 3}
		}
		var h Hull
		for _, p := range pts {
			h.Append(p)
		}
		pivot := P{tm + 0.5 + rng.Float64(), rng.NormFloat64() * 3}
		eps := 0.01 + rng.Float64()

		wantMin, _ := MinSlopeThrough(pivot, pts, -eps)
		gotMinHull, _ := MinSlopeThrough(pivot, h.Upper(), -eps)
		gotMinChain, _ := MinSlopeThroughChain(pivot, h.Upper(), -eps)
		if !almostEq(wantMin, gotMinHull) {
			t.Fatalf("trial %d: hull min tangent %v != all-points %v", trial, gotMinHull, wantMin)
		}
		if !almostEq(wantMin, gotMinChain) {
			t.Fatalf("trial %d: ternary min tangent %v != all-points %v", trial, gotMinChain, wantMin)
		}

		wantMax, _ := MaxSlopeThrough(pivot, pts, +eps)
		gotMaxHull, _ := MaxSlopeThrough(pivot, h.Lower(), +eps)
		gotMaxChain, _ := MaxSlopeThroughChain(pivot, h.Lower(), +eps)
		if !almostEq(wantMax, gotMaxHull) {
			t.Fatalf("trial %d: hull max tangent %v != all-points %v", trial, gotMaxHull, wantMax)
		}
		if !almostEq(wantMax, gotMaxChain) {
			t.Fatalf("trial %d: ternary max tangent %v != all-points %v", trial, gotMaxChain, wantMax)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if a > m {
		m = a
	}
	if -a > m {
		m = -a
	}
	return d <= 1e-9*m
}

func BenchmarkTangentLinearScan(b *testing.B) {
	chain, pivot := benchChain(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinSlopeThrough(pivot, chain, -0.5)
	}
}

func BenchmarkTangentTernarySearch(b *testing.B) {
	chain, pivot := benchChain(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinSlopeThroughChain(pivot, chain, -0.5)
	}
}

// benchChain builds a strictly concave chain (a valid upper hull) of n
// vertices plus a pivot to its right.
func benchChain(n int) ([]P, P) {
	chain := make([]P, n)
	for i := range chain {
		t := float64(i)
		chain[i] = P{t, -0.001 * t * t}
	}
	return chain, P{float64(n) + 10, 5}
}

// TestChainSearchLongConcaveChain exercises the ternary-search loop on a
// long strictly concave chain where the tangent vertex sits at various
// positions.
func TestChainSearchLongConcaveChain(t *testing.T) {
	const n = 300
	chain := make([]P, n)
	for i := range chain {
		x := float64(i)
		chain[i] = P{T: x, X: -0.01 * (x - 150) * (x - 150)}
	}
	for _, pivotX := range []float64{-400, -50, 0, 50, 400} {
		pivot := P{T: float64(n) + 20, X: pivotX}
		wantMin, wantIdxMin := MinSlopeThrough(pivot, chain, -1)
		gotMin, gotIdxMin := MinSlopeThroughChain(pivot, chain, -1)
		if !almostEq(wantMin, gotMin) || wantIdxMin != gotIdxMin {
			t.Fatalf("pivot %v: min (%v,%d) != chain (%v,%d)",
				pivotX, wantMin, wantIdxMin, gotMin, gotIdxMin)
		}
	}
	// Lower-chain mirror: a convex chain.
	for i := range chain {
		x := float64(i)
		chain[i] = P{T: x, X: 0.01 * (x - 150) * (x - 150)}
	}
	for _, pivotX := range []float64{-400, 0, 400} {
		pivot := P{T: float64(n) + 20, X: pivotX}
		wantMax, wantIdxMax := MaxSlopeThrough(pivot, chain, +1)
		gotMax, gotIdxMax := MaxSlopeThroughChain(pivot, chain, +1)
		if !almostEq(wantMax, gotMax) || wantIdxMax != gotIdxMax {
			t.Fatalf("pivot %v: max (%v,%d) != chain (%v,%d)",
				pivotX, wantMax, wantIdxMax, gotMax, gotIdxMax)
		}
	}
}
