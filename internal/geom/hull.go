package geom

// Hull incrementally maintains the convex hull of a sequence of points
// appended in strictly increasing time order, exactly as described in
// Section 4.1 of the paper: the vertices are kept as an upper chain and a
// lower chain, each sorted by time, overlapping in the first and last
// appended points. Appending a point costs amortized O(1); over a whole
// filtering interval the maintenance is linear in the number of points.
//
// The zero value is an empty hull ready for use.
type Hull struct {
	upper []P
	lower []P
	n     int // number of points appended since the last Reset
}

// cross returns the z component of (a−o) × (b−o). Positive means the turn
// o→a→b is counter-clockwise, negative clockwise, zero collinear.
func cross(o, a, b P) float64 {
	return (a.T-o.T)*(b.X-o.X) - (a.X-o.X)*(b.T-o.T)
}

// Append adds p, which must have a timestamp strictly greater than every
// previously appended point, and restores convexity of both chains.
func (h *Hull) Append(p P) {
	// Upper chain turns clockwise as time advances: pop while the middle
	// point of the last streak makes a counter-clockwise (or straight) turn.
	for len(h.upper) >= 2 && cross(h.upper[len(h.upper)-2], h.upper[len(h.upper)-1], p) >= 0 {
		h.upper = h.upper[:len(h.upper)-1]
	}
	h.upper = append(h.upper, p)
	// Lower chain turns counter-clockwise.
	for len(h.lower) >= 2 && cross(h.lower[len(h.lower)-2], h.lower[len(h.lower)-1], p) <= 0 {
		h.lower = h.lower[:len(h.lower)-1]
	}
	h.lower = append(h.lower, p)
	h.n++
}

// Upper returns the upper chain, ordered by time. The slice aliases the
// hull's internal storage and is invalidated by the next Append or Reset.
func (h *Hull) Upper() []P { return h.upper }

// Lower returns the lower chain, ordered by time. The slice aliases the
// hull's internal storage and is invalidated by the next Append or Reset.
func (h *Hull) Lower() []P { return h.lower }

// Len returns the number of points appended since the last Reset.
func (h *Hull) Len() int { return h.n }

// Vertices returns the total number of hull vertices currently stored
// (upper + lower chains; the shared first and last points are counted in
// both chains, matching the paper's m_H accounting loosely).
func (h *Hull) Vertices() int { return len(h.upper) + len(h.lower) }

// First returns the earliest appended point. It panics on an empty hull.
func (h *Hull) First() P { return h.upper[0] }

// Last returns the most recently appended point. It panics on an empty hull.
func (h *Hull) Last() P { return h.upper[len(h.upper)-1] }

// Reset empties the hull, retaining backing storage for reuse by the next
// filtering interval.
func (h *Hull) Reset() {
	h.upper = h.upper[:0]
	h.lower = h.lower[:0]
	h.n = 0
}
