package geom

// Tangent searches used by the slide filter (Lemma 4.3). When a new data
// point invalidates the upper line u, the replacement is the line of
// minimum slope through (t_j, x_j+ε) and one of the earlier points shifted
// down by ε; the minimizer always lies on the upper chain of the convex
// hull of the earlier points. Symmetrically, the lower line l is replaced
// by the maximum-slope line through (t_j, x_j−ε) and an earlier point
// shifted up by ε, whose maximizer lies on the lower chain.

// MinSlopeThrough scans anchors and returns the smallest slope of a line
// through pivot and anchors[i] shifted vertically by shift, together with
// the index achieving it. Every anchor must satisfy anchors[i].T < pivot.T.
// It returns index −1 when anchors is empty.
func MinSlopeThrough(pivot P, anchors []P, shift float64) (float64, int) {
	best, bestIdx := 0.0, -1
	for i, q := range anchors {
		a := (pivot.X - (q.X + shift)) / (pivot.T - q.T)
		if bestIdx == -1 || a < best {
			best, bestIdx = a, i
		}
	}
	return best, bestIdx
}

// MaxSlopeThrough is the mirror of MinSlopeThrough: it returns the largest
// slope of a line through pivot and a vertically shifted anchor.
func MaxSlopeThrough(pivot P, anchors []P, shift float64) (float64, int) {
	best, bestIdx := 0.0, -1
	for i, q := range anchors {
		a := (pivot.X - (q.X + shift)) / (pivot.T - q.T)
		if bestIdx == -1 || a > best {
			best, bestIdx = a, i
		}
	}
	return best, bestIdx
}

// MinSlopeThroughChain is MinSlopeThrough specialised to a convex chain
// (the upper chain of a Hull): the slope as a function of the vertex index
// is unimodal there, so the minimum is found by ternary search in
// O(log n) instead of a linear scan. This is the more efficient tangent
// algorithm the paper cites (Chazelle & Dobkin). The final few candidates
// are scanned linearly to stay robust against flat stretches.
func MinSlopeThroughChain(pivot P, chain []P, shift float64) (float64, int) {
	lo, hi := 0, len(chain)-1
	if hi < 0 {
		return 0, -1
	}
	slope := func(i int) float64 {
		q := chain[i]
		return (pivot.X - (q.X + shift)) / (pivot.T - q.T)
	}
	for hi-lo > 8 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if slope(m1) < slope(m2) {
			hi = m2 - 1
		} else {
			lo = m1 + 1
		}
	}
	best, bestIdx := slope(lo), lo
	for i := lo + 1; i <= hi; i++ {
		if a := slope(i); a < best {
			best, bestIdx = a, i
		}
	}
	return best, bestIdx
}

// MaxSlopeThroughChain is the mirror of MinSlopeThroughChain for the lower
// chain of a Hull.
func MaxSlopeThroughChain(pivot P, chain []P, shift float64) (float64, int) {
	lo, hi := 0, len(chain)-1
	if hi < 0 {
		return 0, -1
	}
	slope := func(i int) float64 {
		q := chain[i]
		return (pivot.X - (q.X + shift)) / (pivot.T - q.T)
	}
	for hi-lo > 8 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if slope(m1) > slope(m2) {
			hi = m2 - 1
		} else {
			lo = m1 + 1
		}
	}
	best, bestIdx := slope(lo), lo
	for i := lo + 1; i <= hi; i++ {
		if a := slope(i); a > best {
			best, bestIdx = a, i
		}
	}
	return best, bestIdx
}
