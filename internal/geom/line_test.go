package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThrough(t *testing.T) {
	l, ok := Through(P{0, 0}, P{2, 4})
	if !ok {
		t.Fatal("Through reported vertical for distinct timestamps")
	}
	if l.A != 2 {
		t.Fatalf("slope = %v, want 2", l.A)
	}
	if got := l.Eval(3); got != 6 {
		t.Fatalf("Eval(3) = %v, want 6", got)
	}
}

func TestThroughVertical(t *testing.T) {
	if _, ok := Through(P{1, 0}, P{1, 5}); ok {
		t.Fatal("Through accepted a vertical line")
	}
}

func TestThroughNegativeSlope(t *testing.T) {
	l, ok := Through(P{1, 5}, P{3, 1})
	if !ok || l.A != -2 {
		t.Fatalf("slope = %v, ok=%v; want -2, true", l.A, ok)
	}
}

func TestWithSlope(t *testing.T) {
	l := WithSlope(0.5, P{10, 3})
	if got := l.Eval(14); got != 5 {
		t.Fatalf("Eval(14) = %v, want 5", got)
	}
	if got := l.Eval(10); got != 3 {
		t.Fatalf("Eval at anchor = %v, want 3", got)
	}
}

func TestIntersectTime(t *testing.T) {
	l := WithSlope(1, P{0, 0})
	m := WithSlope(-1, P{0, 4})
	tt, ok := l.IntersectTime(m)
	if !ok || tt != 2 {
		t.Fatalf("intersect at %v, ok=%v; want 2, true", tt, ok)
	}
	p, ok := l.IntersectPoint(m)
	if !ok || p != (P{2, 2}) {
		t.Fatalf("intersect point %v, ok=%v; want {2 2}, true", p, ok)
	}
}

func TestIntersectParallel(t *testing.T) {
	l := WithSlope(1, P{0, 0})
	m := WithSlope(1, P{0, 4})
	if _, ok := l.IntersectTime(m); ok {
		t.Fatal("parallel lines reported an intersection")
	}
	// Coincident lines are also "parallel" for our purposes.
	if _, ok := l.IntersectTime(l); ok {
		t.Fatal("coincident lines reported an intersection")
	}
}

func TestAboveBelow(t *testing.T) {
	l := WithSlope(2, P{0, 1})
	if !l.Above(P{1, 4}) {
		t.Fatal("point above line not detected")
	}
	if !l.Below(P{1, 2}) {
		t.Fatal("point below line not detected")
	}
	if l.Above(P{1, 3}) || l.Below(P{1, 3}) {
		t.Fatal("point on line reported strictly above or below")
	}
}

// Property: the intersection point of two non-parallel lines lies on both.
func TestIntersectionOnBothLines(t *testing.T) {
	f := func(a1, a2, t1, x1, t2, x2 float64) bool {
		if !finite(a1, a2, t1, x1, t2, x2) {
			return true
		}
		a1, a2 = clampf(a1, 100), clampf(a2, 100)
		t1, x1, t2, x2 = clampf(t1, 1e4), clampf(x1, 1e4), clampf(t2, 1e4), clampf(x2, 1e4)
		l := WithSlope(a1, P{t1, x1})
		m := WithSlope(a2, P{t2, x2})
		p, ok := l.IntersectPoint(m)
		if !ok {
			return a1 == a2 // only parallel lines may fail
		}
		scale := 1 + math.Abs(p.X)
		return math.Abs(l.Eval(p.T)-p.X) <= 1e-6*scale &&
			math.Abs(m.Eval(p.T)-p.X) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Through(p, q) passes through both p and q.
func TestThroughPassesThroughBoth(t *testing.T) {
	f := func(t1, x1, dt, x2 float64) bool {
		if !finite(t1, x1, dt, x2) {
			return true
		}
		t1, x1, x2 = clampf(t1, 1e4), clampf(x1, 1e4), clampf(x2, 1e4)
		dt = math.Abs(clampf(dt, 1e3)) + 1e-3
		p, q := P{t1, x1}, P{t1 + dt, x2}
		l, ok := Through(p, q)
		if !ok {
			return false
		}
		scale := 1 + math.Abs(x1) + math.Abs(x2)
		return math.Abs(l.Eval(p.T)-p.X) <= 1e-9*scale &&
			math.Abs(l.Eval(q.T)-q.X) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// clampf folds an arbitrary float into [-lim, lim] so quick-generated
// extremes do not turn every comparison into an overflow test.
func clampf(v, lim float64) float64 {
	return math.Mod(v, lim)
}
