package geom

import "math"

// P is a point in the t–x plane: a timestamp and a single-dimension value.
type P struct {
	T, X float64
}

// Line is an infinite line in the t–x plane in point–slope form.
// The zero value is the horizontal line through the origin.
type Line struct {
	A  float64 // slope dx/dt
	At P       // a point the line passes through
}

// Through returns the line through p and q. It reports false when the two
// points share a timestamp, in which case the line is vertical and cannot
// be represented (slopes are undefined for vertical lines).
func Through(p, q P) (Line, bool) {
	dt := q.T - p.T
	if dt == 0 {
		return Line{}, false
	}
	return Line{A: (q.X - p.X) / dt, At: p}, true
}

// WithSlope returns the line with slope a passing through p.
func WithSlope(a float64, p P) Line {
	return Line{A: a, At: p}
}

// Eval returns the line's value at time t.
func (l Line) Eval(t float64) float64 {
	return l.At.X + l.A*(t-l.At.T)
}

// IntersectTime returns the time at which l and m intersect. It reports
// false when the lines are parallel (or numerically indistinguishable from
// parallel), including the coincident case.
func (l Line) IntersectTime(m Line) (float64, bool) {
	da := l.A - m.A
	if da == 0 || math.IsInf(da, 0) || math.IsNaN(da) {
		return 0, false
	}
	// Solve l.At.X + l.A (t - l.At.T) = m.At.X + m.A (t - m.At.T).
	t := (m.At.X - m.A*m.At.T - l.At.X + l.A*l.At.T) / da
	if math.IsInf(t, 0) || math.IsNaN(t) {
		return 0, false
	}
	return t, true
}

// IntersectPoint returns the intersection point of l and m, reporting
// false for parallel lines.
func (l Line) IntersectPoint(m Line) (P, bool) {
	t, ok := l.IntersectTime(m)
	if !ok {
		return P{}, false
	}
	return P{T: t, X: l.Eval(t)}, true
}

// Above reports whether point p lies strictly above the line.
func (l Line) Above(p P) bool {
	return p.X > l.Eval(p.T)
}

// Below reports whether point p lies strictly below the line.
func (l Line) Below(p P) bool {
	return p.X < l.Eval(p.T)
}
