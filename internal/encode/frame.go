package encode

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Framing wraps an encoded stream in length-prefixed frames so it can be
// carried over a session-oriented transport (a TCP connection) alongside
// other handshake bytes: each frame is a uvarint byte count followed by
// that many payload bytes, and the concatenated payloads reproduce the
// original stream. One frame corresponds to one Write — with the Encoder's
// buffered writer on top, one flushed batch of segments becomes (at most a
// few) frames, so a live reader sees segment batches exactly as the
// transmitter flushed them.

// MaxFrame bounds a single frame's payload; FrameReader rejects longer
// frames as malformed rather than allocating unboundedly.
const MaxFrame = 1 << 24

// scratch pools the single-write assembly buffers FrameWriter and
// RecordWriter use on writers without gather support, so steady-state
// framing allocates nothing regardless of how many sessions or wal
// shards are live.
var scratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// FrameWriter is an io.Writer that emits each Write as one
// length-prefixed frame on the underlying writer, using a single
// underlying write per frame (one packet on an unbuffered socket): a
// gather write when the writer supports it (a TCP connection — zero
// copies beyond the kernel), a pooled-buffer copy otherwise.
type FrameWriter struct {
	w      io.Writer
	bw     BuffersWriter // non-nil when w reaches a real writev
	lenBuf [binary.MaxVarintLen64]byte
}

// NewFrameWriter returns a FrameWriter over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	fw := &FrameWriter{w: w}
	if bw, ok := w.(BuffersWriter); ok && bw.Vectored() {
		fw.bw = bw
	}
	return fw
}

// Write frames p and writes it out. Empty writes emit nothing.
func (fw *FrameWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if len(p) > MaxFrame {
		return 0, fmt.Errorf("%w: frame of %d bytes exceeds %d", ErrFormat, len(p), MaxFrame)
	}
	n := binary.PutUvarint(fw.lenBuf[:], uint64(len(p)))
	if fw.bw != nil {
		if _, err := fw.bw.WriteBuffers(fw.lenBuf[:n], p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	bp := scratch.Get().(*[]byte)
	buf := append((*bp)[:0], fw.lenBuf[:n]...)
	buf = append(buf, p...)
	_, err := fw.w.Write(buf)
	*bp = buf
	scratch.Put(bp)
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// FrameReader is an io.Reader that strips the frame lengths inserted by
// FrameWriter, yielding the original byte stream. A clean EOF between
// frames surfaces as io.EOF; EOF inside a frame is io.ErrUnexpectedEOF.
type FrameReader struct {
	br        *bufio.Reader
	remaining int
}

// NewFrameReader returns a FrameReader over r. If r is already a
// *bufio.Reader it is used directly (no double buffering, and no bytes
// beyond the frames are consumed ahead of need from r's own source).
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &FrameReader{br: br}
}

// Read returns payload bytes, never crossing a frame boundary in a single
// call (callers that need exact counts use io.ReadFull as usual).
func (fr *FrameReader) Read(p []byte) (int, error) {
	for fr.remaining == 0 {
		n, err := binary.ReadUvarint(fr.br)
		if err != nil {
			if err == io.EOF {
				return 0, io.EOF
			}
			return 0, fmt.Errorf("%w: bad frame length: %v", ErrFormat, err)
		}
		if n > MaxFrame {
			return 0, fmt.Errorf("%w: frame of %d bytes exceeds %d", ErrFormat, n, MaxFrame)
		}
		fr.remaining = int(n) // zero-length frames are skipped
	}
	if len(p) == 0 {
		return 0, nil
	}
	if len(p) > fr.remaining {
		p = p[:fr.remaining]
	}
	n, err := fr.br.Read(p)
	fr.remaining -= n
	if err == io.EOF && fr.remaining > 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
