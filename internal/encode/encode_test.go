package encode

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/recon"
)

func TestRoundTripLinearSegments(t *testing.T) {
	segs := []core.Segment{
		{T0: 0, T1: 5, X0: []float64{1, 2}, X1: []float64{3, 4}},
		{T0: 5, T1: 9, X0: []float64{3, 4}, X1: []float64{0, 0}, Connected: true},
		{T0: 11, T1: 12, X0: []float64{7, 7}, X1: []float64{8, 8}},
		{T0: 13, T1: 13, X0: []float64{1, 1}, X1: []float64{1, 1}},
	}
	var buf bytes.Buffer
	n, err := EncodeAll(&buf, []float64{0.5, 0.25}, false, segs)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d != buffer %d", n, buf.Len())
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 2 || d.Constant() {
		t.Fatalf("header: dim=%d constant=%v", d.Dim(), d.Constant())
	}
	if d.Epsilon()[0] != 0.5 || d.Epsilon()[1] != 0.25 {
		t.Fatalf("eps = %v", d.Epsilon())
	}
	got, err := ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segs) {
		t.Fatalf("got %d segments, want %d", len(got), len(segs))
	}
	for i := range segs {
		if got[i].T0 != segs[i].T0 || got[i].T1 != segs[i].T1 ||
			got[i].Connected != segs[i].Connected ||
			!vecEq(got[i].X0, segs[i].X0) || !vecEq(got[i].X1, segs[i].X1) {
			t.Fatalf("segment %d mismatch:\n got %+v\nwant %+v", i, got[i], segs[i])
		}
	}
	// A second Next keeps returning EOF.
	if _, err := d.Next(); err == nil {
		t.Fatal("Next after EOF succeeded")
	}
}

func TestRoundTripConstantSegments(t *testing.T) {
	segs := []core.Segment{
		{T0: 0, T1: 4, X0: []float64{2}, X1: []float64{2}},
		{T0: 5, T1: 9, X0: []float64{-1}, X1: []float64{-1}},
	}
	var buf bytes.Buffer
	if _, err := EncodeAll(&buf, []float64{1}, true, segs); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Constant() {
		t.Fatal("constant flag lost")
	}
	got, err := ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].X0[0] != 2 || got[1].X0[0] != -1 || got[1].T0 != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestConnectedChainValidation(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	bad := core.Segment{T0: 0, T1: 1, X0: []float64{0}, X1: []float64{1}, Connected: true}
	if err := e.WriteSegment(bad); !errors.Is(err, ErrChain) {
		t.Fatalf("unchained connected segment: err = %v", err)
	}
}

func TestEncoderClosed(t *testing.T) {
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, []float64{1}, false)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	s := core.Segment{T0: 0, T1: 1, X0: []float64{0}, X1: []float64{1}}
	if err := e.WriteSegment(s); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := NewDecoder(bytes.NewReader(nil)); !errors.Is(err, ErrFormat) {
		t.Fatalf("empty stream: %v", err)
	}
	// Valid header, then garbage op.
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, []float64{1}, false)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 99 // overwrite the end marker with an unknown op
	d, err := NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("unknown op: %v", err)
	}
	// Truncated mid-segment.
	var buf2 bytes.Buffer
	e2, _ := NewEncoder(&buf2, []float64{1}, false)
	seg := core.Segment{T0: 0, T1: 1, X0: []float64{0}, X1: []float64{1}}
	if err := e2.WriteSegment(seg); err != nil {
		t.Fatal(err)
	}
	_ = e2.Close()
	trunc := buf2.Bytes()[:buf2.Len()-12]
	d2, err := NewDecoder(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated segment: %v", err)
	}
}

func TestWriteSegmentDimMismatch(t *testing.T) {
	var buf bytes.Buffer
	e, _ := NewEncoder(&buf, []float64{1}, false)
	s := core.Segment{T0: 0, T1: 1, X0: []float64{0, 0}, X1: []float64{1, 1}}
	if err := e.WriteSegment(s); !errors.Is(err, ErrFormat) {
		t.Fatalf("dim mismatch: %v", err)
	}
}

// TestEndToEndFilterRoundTrip runs every filter over a real workload,
// ships the segments through the codec, and checks the receiver-side
// reconstruction still satisfies the ε guarantee — the full
// transmitter→wire→receiver path of the paper's Section 1 scenario.
func TestEndToEndFilterRoundTrip(t *testing.T) {
	signal := gen.SeaSurfaceTemperature()
	eps := []float64{0.05}
	filters := map[string]core.Filter{}
	{
		c, _ := core.NewCache(eps)
		l, _ := core.NewLinear(eps)
		sw, _ := core.NewSwing(eps)
		sl, _ := core.NewSlide(eps)
		filters["cache"] = c
		filters["linear"] = l
		filters["swing"] = sw
		filters["slide"] = sl
	}
	for name, f := range filters {
		segs, err := core.Run(f, signal)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, constant := f.(*core.Cache)
		var buf bytes.Buffer
		bytesOut, err := EncodeAll(&buf, eps, constant, segs)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if bytesOut >= RawSize(len(signal), 1) {
			t.Fatalf("%s: encoded %d bytes, no smaller than raw %d",
				name, bytesOut, RawSize(len(signal), 1))
		}
		d, err := NewDecoder(&buf)
		if err != nil {
			t.Fatalf("%s: decode header: %v", name, err)
		}
		got, err := ReadAll(d)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		model, err := recon.NewModel(got)
		if err != nil {
			t.Fatalf("%s: model: %v", name, err)
		}
		if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
			t.Fatalf("%s: receiver-side guarantee broken: %v", name, err)
		}
	}
}

// TestRoundTripRandomSegments fuzzes the codec with random (valid)
// segment chains.
func TestRoundTripRandomSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(4)
		n := 1 + rng.Intn(40)
		segs := make([]core.Segment, 0, n)
		tm := rng.Float64()
		var lastX []float64
		for j := 0; j < n; j++ {
			connected := j > 0 && rng.Intn(2) == 0
			var s core.Segment
			if connected {
				s.T0 = tm
				s.X0 = append([]float64(nil), lastX...)
				s.Connected = true
			} else {
				tm += rng.Float64()
				s.T0 = tm
				s.X0 = randVec(rng, dim)
			}
			tm += 0.1 + rng.Float64()
			s.T1 = tm
			s.X1 = randVec(rng, dim)
			lastX = s.X1
			segs = append(segs, s)
		}
		var buf bytes.Buffer
		eps := make([]float64, dim)
		for i := range eps {
			eps[i] = rng.Float64()
		}
		if _, err := EncodeAll(&buf, eps, false, segs); err != nil {
			t.Fatal(err)
		}
		d, err := NewDecoder(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(segs) {
			t.Fatalf("trial %d: %d vs %d segments", trial, len(got), len(segs))
		}
		for j := range segs {
			if math.Abs(got[j].T0-segs[j].T0) != 0 || !vecEq(got[j].X1, segs[j].X1) {
				t.Fatalf("trial %d: segment %d mismatch", trial, j)
			}
		}
	}
}

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func TestRawSize(t *testing.T) {
	if RawSize(100, 1) != 1600 {
		t.Fatalf("RawSize(100,1) = %d", RawSize(100, 1))
	}
	if RawSize(10, 3) != 320 {
		t.Fatalf("RawSize(10,3) = %d", RawSize(10, 3))
	}
}
