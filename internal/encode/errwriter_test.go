package encode

import (
	"errors"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// limitWriter fails with errSink after n bytes, exercising every write
// error path in the encoder.
type limitWriter struct {
	n int
}

var errSink = errors.New("sink full")

func (w *limitWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		k := w.n
		w.n = 0
		return k, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

// TestEncoderWriterFailures drives the encoder against sinks that fail at
// every possible byte budget: no budget may panic, and small budgets must
// surface the sink error by Close at the latest (bufio batches writes, so
// mid-stream Write calls may succeed into the buffer).
func TestEncoderWriterFailures(t *testing.T) {
	segs := []core.Segment{
		{T0: 0, T1: 1, X0: []float64{1, 2}, X1: []float64{3, 4}, Points: 2},
		{T0: 1, T1: 2, X0: []float64{3, 4}, X1: []float64{5, 6}, Connected: true, Points: 3},
		{T0: 3, T1: 3, X0: []float64{0, 0}, X1: []float64{0, 0}, Points: 1},
	}
	eps := []float64{0.5, 0.5}

	// Budget big enough for everything: must succeed.
	okSink := &limitWriter{n: 1 << 16}
	e, err := NewEncoder(okSink, eps, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := e.WriteSegment(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	full := int(e.BytesWritten())

	for budget := 0; budget < full; budget++ {
		sink := &limitWriter{n: budget}
		e, err := NewEncoder(sink, eps, false)
		if err != nil {
			continue // header flushing does not happen until Flush/Close
		}
		failed := false
		for _, s := range segs {
			if err := e.WriteSegment(s); err != nil {
				failed = true
				break
			}
			if err := e.Flush(); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			if err := e.Close(); err == nil {
				t.Fatalf("budget %d of %d bytes succeeded end to end", budget, full)
			}
		}
	}
}

// TestConstantEncoderWriterFailure covers the constant-segment write path.
func TestConstantEncoderWriterFailure(t *testing.T) {
	sink := &limitWriter{n: 10}
	e, err := NewEncoder(sink, []float64{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	s := core.Segment{T0: 0, T1: 1, X0: []float64{2}, X1: []float64{2}}
	if err := e.WriteSegment(s); err != nil {
		t.Fatal(err) // buffered; no error yet
	}
	if err := e.Close(); !errors.Is(err, errSink) {
		t.Fatalf("close error = %v, want sink error", err)
	}
	if err := e.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close = %v", err)
	}
}
