package encode

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// TestHeaderV1Compat pins the compatibility matrix's sender half: a
// stream with no max-lag bound must carry the version-1 header byte for
// byte, whatever constructor built it, so decoders predating the v2
// handshake keep accepting everything a bound-less client sends.
func TestHeaderV1Compat(t *testing.T) {
	seg := core.Segment{T0: 0, T1: 1, X0: []float64{1}, X1: []float64{2}, Points: 5}

	var plain, viaHeader bytes.Buffer
	e1, err := NewEncoder(&plain, []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEncoderHeader(&viaHeader, Header{Epsilon: []float64{0.5}, Kind: KindSwing})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Encoder{e1, e2} {
		if e.Version() != 1 {
			t.Fatalf("bound-less stream got version %d", e.Version())
		}
		if err := e.WriteSegment(seg); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(plain.Bytes(), viaHeader.Bytes()) {
		t.Fatal("NewEncoderHeader without a bound diverged from the v1 encoding")
	}
	if !bytes.HasPrefix(plain.Bytes(), []byte(magic)) {
		t.Fatalf("v1 stream starts with %q", plain.Bytes()[:4])
	}

	d, err := NewDecoder(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 1 || d.Kind() != KindUnknown || d.MaxLag() != 0 {
		t.Fatalf("v1 header decoded as version=%d kind=%v maxlag=%d", d.Version(), d.Kind(), d.MaxLag())
	}
}

// TestHeaderV2RoundTrip drives the extended handshake end to end: kind
// and bound survive, provisional updates decode with the flag set, and
// the connected-segment chain skips over them — the final segment that
// supersedes an update still chains to the last finalized end point.
func TestHeaderV2RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoderHeader(&buf, Header{Epsilon: []float64{0.5, 0.25}, Kind: KindSlide, MaxLag: 10})
	if err != nil {
		t.Fatal(err)
	}
	if e.Version() != 2 {
		t.Fatalf("lag-bounded stream got version %d", e.Version())
	}
	final1 := core.Segment{T0: 0, T1: 2, X0: []float64{1, 1}, X1: []float64{2, 0}, Points: 7}
	update := core.Segment{T0: 2, T1: 5, X0: []float64{2, 0}, X1: []float64{4, -1}, Points: 9, Provisional: true}
	final2 := core.Segment{T0: 2, T1: 6, X0: []float64{2, 0}, X1: []float64{5, -2}, Points: 12, Connected: true}
	if err := e.WriteSegment(final1); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSegment(update); err != nil { // routed through WriteUpdate
		t.Fatal(err)
	}
	if err := e.WriteSegment(final2); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(magicV2)) {
		t.Fatalf("v2 stream starts with %q", buf.Bytes()[:4])
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 2 || d.Kind() != KindSlide || d.MaxLag() != 10 {
		t.Fatalf("v2 header decoded as version=%d kind=%v maxlag=%d", d.Version(), d.Kind(), d.MaxLag())
	}
	segs, err := ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("decoded %d segments, want 3", len(segs))
	}
	if segs[0].Provisional || !segs[1].Provisional || segs[2].Provisional {
		t.Fatalf("provisional flags: %v %v %v", segs[0].Provisional, segs[1].Provisional, segs[2].Provisional)
	}
	if !segs[2].Connected || segs[2].T0 != final1.T1 || segs[2].X0[0] != final1.X1[0] {
		t.Fatalf("chained final after update resolved to T0=%v X0=%v, want the pre-update end %v %v",
			segs[2].T0, segs[2].X0, final1.T1, final1.X1)
	}
}

// TestUpdateNeedsV2 pins the version gate from both ends: an encoder
// without the max-lag header refuses to write updates, and a v1 stream
// carrying the update op is rejected exactly as a v1 decoder would.
func TestUpdateNeedsV2(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	update := core.Segment{T0: 0, T1: 1, X0: []float64{0}, X1: []float64{1}, Provisional: true}
	if err := e.WriteSegment(update); !errors.Is(err, ErrFormat) {
		t.Fatalf("provisional update on a v1 stream: %v", err)
	}

	// Splice the op into a v1 stream by hand; the decoder must reject it.
	e2, err := NewEncoder(&buf, []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{opUpdate, 0})
	for i := 0; i < 4*8; i++ {
		buf.WriteByte(0)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Fatalf("v1 decoder accepted the update op: %v", err)
	}
}

// TestV2TruncationEveryOffset mirrors the v1 truncation sweep for the
// extended handshake and the update op.
func TestV2TruncationEveryOffset(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoderHeader(&buf, Header{Epsilon: []float64{0.5}, Kind: KindSwing, MaxLag: 4})
	if err != nil {
		t.Fatal(err)
	}
	segs := []core.Segment{
		{T0: 0, T1: 3, X0: []float64{0}, X1: []float64{3}, Points: 4},
		{T0: 3, T1: 6, X0: []float64{3}, X1: []float64{2}, Points: 4, Provisional: true},
		{T0: 3, T1: 8, X0: []float64{3}, X1: []float64{1}, Points: 6, Connected: true},
	}
	for _, s := range segs {
		if err := e.WriteSegment(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if err := drain(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(raw))
		}
	}
	if err := drain(raw); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}

// FuzzHandshake throws arbitrary bytes at the header parser and the
// segment loop behind it: decoding must never panic, hang, or
// over-allocate, whichever header version the noise claims to be.
func FuzzHandshake(f *testing.F) {
	// Seed with valid v1 and v2 streams plus their bare headers.
	var v1, v2 bytes.Buffer
	e1, err := NewEncoder(&v1, []float64{0.5}, false)
	if err != nil {
		f.Fatal(err)
	}
	e1.WriteSegment(core.Segment{T0: 0, T1: 1, X0: []float64{0}, X1: []float64{1}, Points: 2})
	e1.Close()
	e2, err := NewEncoderHeader(&v2, Header{Epsilon: []float64{0.5, 1}, Kind: KindSlide, MaxLag: 100})
	if err != nil {
		f.Fatal(err)
	}
	e2.WriteSegment(core.Segment{T0: 0, T1: 1, X0: []float64{0, 0}, X1: []float64{1, 1}, Points: 2})
	e2.WriteSegment(core.Segment{T0: 1, T1: 3, X0: []float64{1, 1}, X1: []float64{2, 0}, Points: 5, Provisional: true})
	e2.Close()
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:6])
	f.Add(v2.Bytes()[:6])
	f.Add([]byte(magicV2))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := NewDecoder(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if d.MaxLag() < 0 || d.Dim() <= 0 {
			t.Fatalf("accepted header with maxlag=%d dim=%d", d.MaxLag(), d.Dim())
		}
		for {
			if _, err := d.Next(); err != nil {
				if err == io.EOF {
					return
				}
				return
			}
		}
	})
}
