package encode_test

// Golden wire-compatibility tests: canonical PLA1 and PLA2 byte streams
// are committed under testdata/golden and pinned in both directions —
// today's decoder must accept yesterday's bytes (old archives and old
// clients keep working), and today's encoder must reproduce them
// bit-for-bit (new streams stay readable by old decoders). A codec
// change that breaks either is a wire-format break and must ship as a
// new version, not as drift.
//
// Regenerate with `go test ./internal/encode -run TestGolden -update`
// ONLY for an intentional, versioned format revision.

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire files (format revisions only)")

// goldenStream is one pinned stream: header, segments in wire order,
// and the file holding its canonical bytes. Values are chosen to be
// exactly representable so the expectation is unambiguous.
type goldenStream struct {
	file   string
	header encode.Header
	segs   []core.Segment
}

func goldenStreams() []goldenStream {
	v := func(xs ...float64) []float64 { return xs }
	return []goldenStream{
		{
			file:   "pla1-basic.bin",
			header: encode.Header{Epsilon: v(0.25, 0.5)},
			segs: []core.Segment{
				{T0: 0, T1: 4, X0: v(1.5, -2.25), X1: v(3, -1), Points: 9},
				{T0: 4, T1: 6.5, X0: v(3, -1), X1: v(2.5, 0.125), Connected: true, Points: 5},
				{T0: 8, T1: 8, X0: v(-0.5, 7), X1: v(-0.5, 7), Points: 1},
				{T0: 10, T1: 12, X0: v(0, 0), X1: v(-4, 1024), Points: 300},
			},
		},
		{
			file:   "pla1-constant.bin",
			header: encode.Header{Epsilon: v(2), Constant: true},
			segs: []core.Segment{
				{T0: 1, T1: 5, X0: v(42), X1: v(42), Points: 5},
				{T0: 5.5, T1: 9, X0: v(-8.125), X1: v(-8.125), Points: 4},
			},
		},
		{
			file:   "pla2-lag.bin",
			header: encode.Header{Epsilon: v(0.0625), Kind: encode.KindSwing, MaxLag: 10},
			segs: []core.Segment{
				{T0: 0, T1: 3, X0: v(1), X1: v(2), Points: 4},
				// A provisional receiver update for the still-open
				// interval, later superseded by the closing segment.
				{T0: 3, T1: 7, X0: v(2), X1: v(2.5), Provisional: true, Points: 4},
				{T0: 3, T1: 9, X0: v(2), X1: v(3.5), Connected: true, Points: 7},
			},
		},
	}
}

// encodeStream serialises a golden stream with today's encoder.
func encodeStream(t *testing.T, g goldenStream) []byte {
	t.Helper()
	var buf bytes.Buffer
	e, err := encode.NewEncoderHeader(&buf, g.header)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range g.segs {
		if err := e.WriteSegment(s); err != nil {
			t.Fatalf("%s: write %+v: %v", g.file, s, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func goldenPath(file string) string {
	return filepath.Join("testdata", "golden", file)
}

func segsEqual(a, b core.Segment) bool {
	if a.T0 != b.T0 || a.T1 != b.T1 || a.Connected != b.Connected ||
		a.Provisional != b.Provisional || a.Points != b.Points ||
		len(a.X0) != len(b.X0) || len(a.X1) != len(b.X1) {
		return false
	}
	for d := range a.X0 {
		if a.X0[d] != b.X0[d] || a.X1[d] != b.X1[d] {
			return false
		}
	}
	return true
}

// TestGoldenDecode pins the backward direction: the committed bytes
// must decode into exactly the pinned header and segments.
func TestGoldenDecode(t *testing.T) {
	for _, g := range goldenStreams() {
		t.Run(g.file, func(t *testing.T) {
			raw, err := os.ReadFile(goldenPath(g.file))
			if err != nil {
				t.Fatalf("missing golden file (run -update once to create): %v", err)
			}
			d, err := encode.NewDecoder(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("decoder rejects the golden stream: %v", err)
			}
			wantVersion := 1
			if g.header.MaxLag > 0 {
				wantVersion = 2
			}
			if d.Version() != wantVersion || d.Constant() != g.header.Constant ||
				d.MaxLag() != g.header.MaxLag || d.Dim() != len(g.header.Epsilon) {
				t.Fatalf("header decoded as v%d constant=%v lag=%d dim=%d, want v%d %v %d %d",
					d.Version(), d.Constant(), d.MaxLag(), d.Dim(),
					wantVersion, g.header.Constant, g.header.MaxLag, len(g.header.Epsilon))
			}
			if wantVersion == 2 && d.Kind() != g.header.Kind {
				t.Fatalf("kind decoded as %v, want %v", d.Kind(), g.header.Kind)
			}
			for i, e := range g.header.Epsilon {
				if d.Epsilon()[i] != e {
					t.Fatalf("ε_%d decoded as %v, want %v", i, d.Epsilon()[i], e)
				}
			}
			var got []core.Segment
			for {
				s, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("segment %d: %v", len(got), err)
				}
				got = append(got, s)
			}
			if len(got) != len(g.segs) {
				t.Fatalf("decoded %d segments, want %d", len(got), len(g.segs))
			}
			for i := range got {
				if !segsEqual(got[i], g.segs[i]) {
					t.Fatalf("segment %d decoded as %+v, want %+v", i, got[i], g.segs[i])
				}
			}
		})
	}
}

// TestGoldenEncode pins the forward direction: today's encoder must
// reproduce the committed bytes bit for bit.
func TestGoldenEncode(t *testing.T) {
	for _, g := range goldenStreams() {
		t.Run(g.file, func(t *testing.T) {
			got := encodeStream(t, g)
			path := goldenPath(g.file)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run -update once to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				i := 0
				for i < len(got) && i < len(want) && got[i] == want[i] {
					i++
				}
				t.Fatalf("encoder output diverges from the golden bytes at offset %d (got %d bytes, want %d): the wire format changed",
					i, len(got), len(want))
			}
		})
	}
}
