package encode

import (
	"bytes"
	"io"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// TestFrameRoundTrip checks that a framed encoded stream decodes
// identically to the unframed one.
func TestFrameRoundTrip(t *testing.T) {
	segs := []core.Segment{
		{T0: 0, T1: 2, X0: []float64{1}, X1: []float64{3}, Points: 3},
		{T0: 2, T1: 5, X0: []float64{3}, X1: []float64{-1}, Connected: true, Points: 4},
		{T0: 7, T1: 9, X0: []float64{0.5}, X1: []float64{0.25}, Points: 2},
	}
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	enc, err := NewEncoder(fw, []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := enc.WriteSegment(s); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil { // one frame per segment batch
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	dec, err := NewDecoder(NewFrameReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segs) {
		t.Fatalf("got %d segments, want %d", len(got), len(segs))
	}
	for i, s := range got {
		w := segs[i]
		if s.T0 != w.T0 || s.T1 != w.T1 || s.X0[0] != w.X0[0] || s.X1[0] != w.X1[0] ||
			s.Connected != w.Connected || s.Points != w.Points {
			t.Errorf("segment %d: got %+v, want %+v", i, s, w)
		}
	}
}

// TestFrameReaderBoundaries exercises partial reads across frames.
func TestFrameReaderBoundaries(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for _, chunk := range [][]byte{[]byte("hello"), nil, []byte(" "), []byte("world")} {
		if _, err := fw.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	// A second read at clean EOF keeps returning io.EOF.
	if _, err := fr.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

// TestFrameReaderTruncated reports io.ErrUnexpectedEOF for a frame cut
// short mid-payload.
func TestFrameReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if _, err := fw.Write([]byte("truncate me")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	fr := NewFrameReader(bytes.NewReader(cut))
	if _, err := io.ReadAll(fr); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}
