// Package encode defines a compact binary wire format for transmitting a
// filter's recordings from transmitter to receiver — the communication
// substrate the paper's motivation rests on (Section 1). The format
// mirrors the paper's recording accounting: a connected segment ships one
// recording, a disconnected one ships two, and a piece-wise constant
// segment ships one; so the byte stream shrinks in proportion to the
// recording count the evaluation reports.
//
// Layout (little endian):
//
//	header:  magic "PLA1" | flags (bit0: constant) | uvarint dim |
//	         dim × float64 ε
//	v2:      magic "PLA2" | flags | uvarint dim | dim × float64 ε |
//	         kind byte | uvarint maxLag
//	segment: op byte | uvarint points | payload
//	  opDisconnected: t0, x0[dim], t1, x1[dim]
//	  opConnected:    t1, x1[dim]          (t0/x0 = previous end)
//	  opConstant:     t0, t1, x[dim]
//	  opPoint:        t, x[dim]            (degenerate single point)
//	  opUpdate:       t0, x0[dim], t1, x1[dim]   (provisional; v2 only)
//	  opRetune:       eff[dim], uvarint stride, uvarint shed
//	                  (no points field; only on flagRetune streams)
//	  opEnd:          stream terminator (no points field)
//
// The points field carries Segment.Points, the number of original
// samples the segment represents, so receivers can report compression
// ratios without seeing the raw stream.
//
// Version 2 extends the handshake for max-lag streaming (Sections 3.3,
// 4.3): the header additionally advertises the sender's filter kind and
// its m_max_lag bound, and the opUpdate record carries a provisional
// receiver update — the filter's current line for a still-open interval,
// superseded by the final segment that closes it. Provisional updates do
// not participate in connected-segment chaining. A sender with no
// max-lag bound emits a v1 header, so streams that never use the
// extension stay readable by v1 decoders.
//
// The retune extension (flags bit 1, either header version) supports
// graceful degradation: a sender that may decimate points ahead of its
// filter, or renegotiate ε mid-stream, sets flagRetune in the handshake
// and announces each precision change with an opRetune record — the
// effective per-dimension ε of everything sent so far, the current
// decimation stride (0 = off, k ≥ 2 = every k-th point dropped), and
// the cumulative count of decimated points. Receivers that don't know
// the flag ignore the bit, so the sender must not emit opRetune until
// the peer acknowledges the capability (the server protocol does this
// with its handshake status byte). opRetune records are not segments
// and leave the connected-segment chain state untouched.
package encode

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/pla-go/pla/internal/core"
)

const (
	magic   = "PLA1"
	magicV2 = "PLA2"
)

const (
	opEnd byte = iota
	opDisconnected
	opConnected
	opConstant
	opPoint
	opUpdate
	opRetune
)

const (
	flagConstant byte = 1 << 0
	flagRetune   byte = 1 << 1
)

// maxMaxLag bounds the advertised m_max_lag a decoder accepts; anything
// larger is a malformed header, not a plausible bound. (It must fit an
// int on 32-bit platforms.)
const maxMaxLag = 1<<31 - 1

// FilterKind names the filter family behind a v2 stream, advertised in
// the handshake so the receiver knows how to interpret the max-lag bound.
type FilterKind byte

// Filter kinds carried by the v2 header. KindUnknown is what a v1 stream
// reports and what forward-compatible decoders fall back to.
const (
	KindUnknown FilterKind = iota
	KindSwing
	KindSlide
	KindCache
)

// String names the kind for flags and logs.
func (k FilterKind) String() string {
	switch k {
	case KindSwing:
		return "swing"
	case KindSlide:
		return "slide"
	case KindCache:
		return "cache"
	default:
		return "unknown"
	}
}

// ParseFilterKind maps a flag word to a FilterKind.
func ParseFilterKind(s string) (FilterKind, error) {
	switch s {
	case "swing":
		return KindSwing, nil
	case "slide":
		return KindSlide, nil
	case "cache":
		return KindCache, nil
	default:
		return KindUnknown, fmt.Errorf("unknown filter kind %q (want swing, slide or cache)", s)
	}
}

// Header parameterises a stream's handshake. The zero Kind/MaxLag
// produce a version-1 header, so plain streams remain readable by old
// decoders; a positive MaxLag selects version 2, which additionally
// advertises the filter kind and the lag bound.
type Header struct {
	// Epsilon is the per-dimension precision contract (required).
	Epsilon []float64
	// Constant marks piece-wise constant (cache filter) output.
	Constant bool
	// Kind is the sender's filter family; transmitted only on v2 streams.
	Kind FilterKind
	// MaxLag is the sender's m_max_lag bound in points (0 = unbounded).
	// A positive bound selects the v2 header and allows WriteUpdate.
	MaxLag int
	// Retune sets flagRetune in the handshake: the sender may emit
	// opRetune records (after the peer acknowledges the capability) and
	// is willing to receive ε renegotiations.
	Retune bool
}

// Errors returned by the codec.
var (
	// ErrFormat reports a malformed stream.
	ErrFormat = errors.New("encode: malformed stream")
	// ErrClosed reports a write after Close.
	ErrClosed = errors.New("encode: encoder closed")
	// ErrChain reports a connected segment that does not start at the
	// previous segment's end.
	ErrChain = errors.New("encode: connected segment does not chain")
)

// Encoder serialises segments. Create with NewEncoder or
// NewEncoderHeader.
type Encoder struct {
	cw       *CountingWriter
	bw       *bufio.Writer
	dim      int
	constant bool
	retune   bool
	version  int
	lastT    float64
	lastX    []float64
	haveLast bool
	closed   bool
	buf      [8]byte
	// vbuf backs uvarint encoding; a field rather than a local so the
	// slice handed to bufio does not force a per-segment heap escape.
	vbuf [binary.MaxVarintLen64]byte
}

// NewEncoder writes a version-1 stream header for a dim-dimensional
// signal with the given precision widths and returns an encoder.
// constant marks piece-wise constant (cache filter) output.
func NewEncoder(w io.Writer, eps []float64, constant bool) (*Encoder, error) {
	return NewEncoderHeader(w, Header{Epsilon: eps, Constant: constant})
}

// NewEncoderHeader writes the stream header described by h and returns
// an encoder. With a positive MaxLag the header is version 2 (filter
// kind and lag bound advertised, provisional updates allowed); otherwise
// it is the version-1 header old decoders accept.
func NewEncoderHeader(w io.Writer, h Header) (*Encoder, error) {
	if len(h.Epsilon) == 0 {
		return nil, fmt.Errorf("%w: empty epsilon", ErrFormat)
	}
	if h.MaxLag < 0 || h.MaxLag > maxMaxLag {
		return nil, fmt.Errorf("%w: max lag %d out of range", ErrFormat, h.MaxLag)
	}
	cw := NewCountingWriter(w)
	bw := bufio.NewWriter(cw)
	e := &Encoder{cw: cw, bw: bw, dim: len(h.Epsilon), constant: h.Constant, retune: h.Retune, version: 1}
	m := magic
	if h.MaxLag > 0 {
		e.version = 2
		m = magicV2
	}
	if _, err := bw.WriteString(m); err != nil {
		return nil, err
	}
	var flags byte
	if h.Constant {
		flags |= flagConstant
	}
	if h.Retune {
		flags |= flagRetune
	}
	if err := bw.WriteByte(flags); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(h.Epsilon)))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	for _, v := range h.Epsilon {
		if err := e.writeFloat(v); err != nil {
			return nil, err
		}
	}
	if e.version >= 2 {
		if err := bw.WriteByte(byte(h.Kind)); err != nil {
			return nil, err
		}
		n = binary.PutUvarint(tmp[:], uint64(h.MaxLag))
		if _, err := bw.Write(tmp[:n]); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Version returns the stream header version written (1 or 2).
func (e *Encoder) Version() int { return e.version }

func (e *Encoder) writeFloat(v float64) error {
	binary.LittleEndian.PutUint64(e.buf[:], math.Float64bits(v))
	_, err := e.bw.Write(e.buf[:])
	return err
}

func (e *Encoder) writeVec(x []float64) error {
	for _, v := range x {
		if err := e.writeFloat(v); err != nil {
			return err
		}
	}
	return nil
}

// writePoints emits the segment's sample count.
func (e *Encoder) writePoints(n int) error {
	if n < 0 {
		n = 0
	}
	k := binary.PutUvarint(e.vbuf[:], uint64(n))
	_, err := e.bw.Write(e.vbuf[:k])
	return err
}

// WriteSegment appends one segment to the stream. Connected segments are
// validated against the previous segment's end point. A segment marked
// Provisional is routed through WriteUpdate.
func (e *Encoder) WriteSegment(s core.Segment) error {
	if e.closed {
		return ErrClosed
	}
	if s.Provisional {
		return e.WriteUpdate(s)
	}
	if s.Dim() != e.dim || len(s.X1) != e.dim {
		return fmt.Errorf("%w: segment dim %d, stream dim %d", ErrFormat, s.Dim(), e.dim)
	}
	switch {
	case e.constant:
		if err := e.bw.WriteByte(opConstant); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T0); err != nil {
			return err
		}
		if err := e.writeFloat(s.T1); err != nil {
			return err
		}
		if err := e.writeVec(s.X0); err != nil {
			return err
		}
	case s.Connected:
		if !e.haveLast || s.T0 != e.lastT || !vecEq(s.X0, e.lastX) {
			return ErrChain
		}
		if err := e.bw.WriteByte(opConnected); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T1); err != nil {
			return err
		}
		if err := e.writeVec(s.X1); err != nil {
			return err
		}
	case s.T0 == s.T1:
		if err := e.bw.WriteByte(opPoint); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T0); err != nil {
			return err
		}
		if err := e.writeVec(s.X0); err != nil {
			return err
		}
	default:
		if err := e.bw.WriteByte(opDisconnected); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T0); err != nil {
			return err
		}
		if err := e.writeVec(s.X0); err != nil {
			return err
		}
		if err := e.writeFloat(s.T1); err != nil {
			return err
		}
		if err := e.writeVec(s.X1); err != nil {
			return err
		}
	}
	e.lastT = s.T1
	e.lastX = append(e.lastX[:0], s.X1...)
	e.haveLast = true
	return nil
}

// WriteUpdate appends one provisional receiver update — the max-lag
// announcement of a still-open interval's line. Updates need a v2 stream
// (a v1 decoder would reject the op), always carry explicit end points,
// and deliberately leave the connected-segment chain state untouched:
// the final segment that supersedes the update still chains to the last
// finalized segment.
func (e *Encoder) WriteUpdate(s core.Segment) error {
	if e.closed {
		return ErrClosed
	}
	if e.version < 2 {
		return fmt.Errorf("%w: provisional update on a v%d stream (need a max-lag header)", ErrFormat, e.version)
	}
	if s.Dim() != e.dim || len(s.X1) != e.dim {
		return fmt.Errorf("%w: segment dim %d, stream dim %d", ErrFormat, s.Dim(), e.dim)
	}
	if err := e.bw.WriteByte(opUpdate); err != nil {
		return err
	}
	if err := e.writePoints(s.Points); err != nil {
		return err
	}
	if err := e.writeFloat(s.T0); err != nil {
		return err
	}
	if err := e.writeVec(s.X0); err != nil {
		return err
	}
	if err := e.writeFloat(s.T1); err != nil {
		return err
	}
	return e.writeVec(s.X1)
}

// WriteRetune appends one retune record: the effective per-dimension ε
// of the stream so far (contract ε plus whatever decimation or
// renegotiation cost), the current decimation stride (0 = off), and the
// cumulative count of points decimated ahead of the filter. Only legal
// on a stream whose header set Retune — a receiver that never saw the
// flag would reject the op.
func (e *Encoder) WriteRetune(eff []float64, stride int, shed uint64) error {
	if e.closed {
		return ErrClosed
	}
	if !e.retune {
		return fmt.Errorf("%w: retune record on a stream without flagRetune", ErrFormat)
	}
	if len(eff) != e.dim {
		return fmt.Errorf("%w: retune dim %d, stream dim %d", ErrFormat, len(eff), e.dim)
	}
	if stride < 0 || stride == 1 {
		return fmt.Errorf("%w: invalid decimation stride %d", ErrFormat, stride)
	}
	if err := e.bw.WriteByte(opRetune); err != nil {
		return err
	}
	if err := e.writeVec(eff); err != nil {
		return err
	}
	k := binary.PutUvarint(e.vbuf[:], uint64(stride))
	if _, err := e.bw.Write(e.vbuf[:k]); err != nil {
		return err
	}
	k = binary.PutUvarint(e.vbuf[:], shed)
	_, err := e.bw.Write(e.vbuf[:k])
	return err
}

// Flush pushes any buffered bytes to the underlying writer, making every
// segment written so far visible to a live reader.
func (e *Encoder) Flush() error {
	if e.closed {
		return ErrClosed
	}
	return e.bw.Flush()
}

// Close terminates and flushes the stream. The encoder is unusable
// afterwards.
func (e *Encoder) Close() error {
	if e.closed {
		return ErrClosed
	}
	e.closed = true
	if err := e.bw.WriteByte(opEnd); err != nil {
		return err
	}
	return e.bw.Flush()
}

// BytesWritten returns the number of bytes flushed to the underlying
// writer so far (call after Close for the final size).
func (e *Encoder) BytesWritten() int64 { return e.cw.BytesWritten() }

func vecEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
