// Package encode defines a compact binary wire format for transmitting a
// filter's recordings from transmitter to receiver — the communication
// substrate the paper's motivation rests on (Section 1). The format
// mirrors the paper's recording accounting: a connected segment ships one
// recording, a disconnected one ships two, and a piece-wise constant
// segment ships one; so the byte stream shrinks in proportion to the
// recording count the evaluation reports.
//
// Layout (little endian):
//
//	header:  magic "PLA1" | flags (bit0: constant) | uvarint dim |
//	         dim × float64 ε
//	segment: op byte | uvarint points | payload
//	  opDisconnected: t0, x0[dim], t1, x1[dim]
//	  opConnected:    t1, x1[dim]          (t0/x0 = previous end)
//	  opConstant:     t0, t1, x[dim]
//	  opPoint:        t, x[dim]            (degenerate single point)
//	  opEnd:          stream terminator (no points field)
//
// The points field carries Segment.Points, the number of original
// samples the segment represents, so receivers can report compression
// ratios without seeing the raw stream.
package encode

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/pla-go/pla/internal/core"
)

const magic = "PLA1"

const (
	opEnd byte = iota
	opDisconnected
	opConnected
	opConstant
	opPoint
)

const flagConstant byte = 1 << 0

// Errors returned by the codec.
var (
	// ErrFormat reports a malformed stream.
	ErrFormat = errors.New("encode: malformed stream")
	// ErrClosed reports a write after Close.
	ErrClosed = errors.New("encode: encoder closed")
	// ErrChain reports a connected segment that does not start at the
	// previous segment's end.
	ErrChain = errors.New("encode: connected segment does not chain")
)

// Encoder serialises segments. Create with NewEncoder.
type Encoder struct {
	cw       *CountingWriter
	bw       *bufio.Writer
	dim      int
	constant bool
	lastT    float64
	lastX    []float64
	haveLast bool
	closed   bool
	buf      [8]byte
}

// NewEncoder writes the stream header for a dim-dimensional signal with
// the given precision widths and returns an encoder. constant marks
// piece-wise constant (cache filter) output.
func NewEncoder(w io.Writer, eps []float64, constant bool) (*Encoder, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("%w: empty epsilon", ErrFormat)
	}
	cw := NewCountingWriter(w)
	bw := bufio.NewWriter(cw)
	e := &Encoder{cw: cw, bw: bw, dim: len(eps), constant: constant}
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var flags byte
	if constant {
		flags |= flagConstant
	}
	if err := bw.WriteByte(flags); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(eps)))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	for _, v := range eps {
		if err := e.writeFloat(v); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *Encoder) writeFloat(v float64) error {
	binary.LittleEndian.PutUint64(e.buf[:], math.Float64bits(v))
	_, err := e.bw.Write(e.buf[:])
	return err
}

func (e *Encoder) writeVec(x []float64) error {
	for _, v := range x {
		if err := e.writeFloat(v); err != nil {
			return err
		}
	}
	return nil
}

// writePoints emits the segment's sample count.
func (e *Encoder) writePoints(n int) error {
	if n < 0 {
		n = 0
	}
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], uint64(n))
	_, err := e.bw.Write(tmp[:k])
	return err
}

// WriteSegment appends one segment to the stream. Connected segments are
// validated against the previous segment's end point.
func (e *Encoder) WriteSegment(s core.Segment) error {
	if e.closed {
		return ErrClosed
	}
	if s.Dim() != e.dim || len(s.X1) != e.dim {
		return fmt.Errorf("%w: segment dim %d, stream dim %d", ErrFormat, s.Dim(), e.dim)
	}
	switch {
	case e.constant:
		if err := e.bw.WriteByte(opConstant); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T0); err != nil {
			return err
		}
		if err := e.writeFloat(s.T1); err != nil {
			return err
		}
		if err := e.writeVec(s.X0); err != nil {
			return err
		}
	case s.Connected:
		if !e.haveLast || s.T0 != e.lastT || !vecEq(s.X0, e.lastX) {
			return ErrChain
		}
		if err := e.bw.WriteByte(opConnected); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T1); err != nil {
			return err
		}
		if err := e.writeVec(s.X1); err != nil {
			return err
		}
	case s.T0 == s.T1:
		if err := e.bw.WriteByte(opPoint); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T0); err != nil {
			return err
		}
		if err := e.writeVec(s.X0); err != nil {
			return err
		}
	default:
		if err := e.bw.WriteByte(opDisconnected); err != nil {
			return err
		}
		if err := e.writePoints(s.Points); err != nil {
			return err
		}
		if err := e.writeFloat(s.T0); err != nil {
			return err
		}
		if err := e.writeVec(s.X0); err != nil {
			return err
		}
		if err := e.writeFloat(s.T1); err != nil {
			return err
		}
		if err := e.writeVec(s.X1); err != nil {
			return err
		}
	}
	e.lastT = s.T1
	e.lastX = append(e.lastX[:0], s.X1...)
	e.haveLast = true
	return nil
}

// Flush pushes any buffered bytes to the underlying writer, making every
// segment written so far visible to a live reader.
func (e *Encoder) Flush() error {
	if e.closed {
		return ErrClosed
	}
	return e.bw.Flush()
}

// Close terminates and flushes the stream. The encoder is unusable
// afterwards.
func (e *Encoder) Close() error {
	if e.closed {
		return ErrClosed
	}
	e.closed = true
	if err := e.bw.WriteByte(opEnd); err != nil {
		return err
	}
	return e.bw.Flush()
}

// BytesWritten returns the number of bytes flushed to the underlying
// writer so far (call after Close for the final size).
func (e *Encoder) BytesWritten() int64 { return e.cw.BytesWritten() }

func vecEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
