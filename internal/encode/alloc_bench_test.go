package encode

import (
	"bytes"
	"io"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// The ZeroAlloc benchmarks are the allocation ratchet: `make alloc-check`
// runs every benchmark whose name ends in ZeroAlloc with -benchmem and
// fails the build if any reports more than 0 allocs/op. Amortized costs
// (slice doubling, the decoder's vector arena) are deliberately allowed —
// they vanish in the per-op average — but anything per-frame, per-record
// or per-segment shows up as ≥1 and fails.

func BenchmarkFrameWriteZeroAlloc(b *testing.B) {
	fw := NewFrameWriter(NewCountingWriter(io.Discard))
	payload := bytes.Repeat([]byte{0xAB}, 512)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordWriteZeroAlloc(b *testing.B) {
	rw := NewRecordWriter(io.Discard)
	payload := bytes.Repeat([]byte{0xCD}, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rw.WriteRecord(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSegmentZeroAlloc(b *testing.B) {
	e, err := NewEncoder(NewFrameWriter(NewCountingWriter(io.Discard)), []float64{0.5}, false)
	if err != nil {
		b.Fatal(err)
	}
	x0, x1 := []float64{1.5}, []float64{2.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := core.Segment{T0: float64(2 * i), T1: float64(2*i + 1), X0: x0, X1: x1, Points: 2}
		if err := e.WriteSegment(seg); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader serves head once, then repeats body forever — an infinite
// well-formed stream, so the decode benchmark can run b.N segments
// without materialising b.N segments of input.
type loopReader struct {
	head   []byte
	body   []byte
	pos    int
	inBody bool
}

func (l *loopReader) Read(p []byte) (int, error) {
	src := l.head
	if l.inBody {
		src = l.body
	}
	if l.pos == len(src) {
		l.inBody = true
		l.pos = 0
		src = l.body
	}
	n := copy(p, src[l.pos:])
	l.pos += n
	return n, nil
}

func BenchmarkDecodeSegmentZeroAlloc(b *testing.B) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, []float64{0.5}, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	head := append([]byte(nil), buf.Bytes()...)
	seg := core.Segment{T0: 0, T1: 1, X0: []float64{1.5}, X1: []float64{2.5}, Points: 2}
	if err := e.WriteSegment(seg); err != nil {
		b.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	body := append([]byte(nil), buf.Bytes()[len(head):]...)

	d, err := NewDecoder(&loopReader{head: head, body: body})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
