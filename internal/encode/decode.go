package encode

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/pla-go/pla/internal/core"
)

// Decoder reads a stream produced by Encoder and reconstitutes the
// segments, resolving connected segments against their predecessors.
type Decoder struct {
	br       *bufio.Reader
	dim      int
	constant bool
	retune   bool
	version  int
	kind     FilterKind
	maxLag   int
	eps      []float64
	lastT    float64
	lastX    []float64
	haveLast bool
	done     bool
	buf      [8]byte
	chunk    []float64 // arena the per-segment vectors are carved from

	// Retune state: the newest opRetune record's payload, consumed by
	// Next internally (retune records are not segments). retuneGen
	// counts records seen, so a receiver polling between segments can
	// tell when the state changed.
	effEps     []float64
	shedStride int
	shedTotal  uint64
	retuneGen  int
}

// vecChunk is how many dim-sized vectors one decoder arena chunk holds:
// steady-state decode costs one allocation per vecChunk segments instead
// of one per segment. Decoded segments keep their slices forever (they
// land in the archive), so handing out sub-slices of a retained chunk
// wastes nothing.
const vecChunk = 256

// maxChunkFloats caps a chunk's footprint so absurd-dimensional streams
// do not trigger a huge up-front allocation; past the cap the decoder
// degrades to one allocation per vector, exactly the old behaviour.
const maxChunkFloats = 1 << 16

// newVec returns a fresh dim-sized vector carved from the arena.
func (d *Decoder) newVec() []float64 {
	if len(d.chunk) < d.dim {
		n := d.dim * vecChunk
		if n > maxChunkFloats {
			n = d.dim
		}
		d.chunk = make([]float64, n)
	}
	x := d.chunk[:d.dim:d.dim]
	d.chunk = d.chunk[d.dim:]
	return x
}

// NewDecoder reads and validates the stream header, accepting both the
// v1 and the extended v2 (filter kind + max-lag) handshakes.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	version := 0
	switch string(head) {
	case magic:
		version = 1
	case magicV2:
		version = 2
	default:
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing flags: %v", ErrFormat, err)
	}
	dim64, err := binary.ReadUvarint(br)
	if err != nil || dim64 == 0 || dim64 > 1<<20 {
		return nil, fmt.Errorf("%w: bad dimensionality", ErrFormat)
	}
	d := &Decoder{
		br:       br,
		dim:      int(dim64),
		constant: flags&flagConstant != 0,
		retune:   flags&flagRetune != 0,
		version:  version,
		eps:      make([]float64, dim64),
	}
	for i := range d.eps {
		v, err := d.readFloat()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated epsilon", ErrFormat)
		}
		d.eps[i] = v
	}
	if version >= 2 {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated header: %v", ErrFormat, err)
		}
		// Unknown kinds are forward compatible: the receiver only needs
		// the bound, not the family, to account for staleness.
		d.kind = FilterKind(kind)
		lag, err := binary.ReadUvarint(br)
		if err != nil || lag > maxMaxLag {
			return nil, fmt.Errorf("%w: bad max lag", ErrFormat)
		}
		d.maxLag = int(lag)
	}
	return d, nil
}

// Dim returns the stream's dimensionality.
func (d *Decoder) Dim() int { return d.dim }

// Constant reports whether the stream holds piece-wise constant segments.
func (d *Decoder) Constant() bool { return d.constant }

// Epsilon returns the per-dimension precision widths from the header.
func (d *Decoder) Epsilon() []float64 { return d.eps }

// Version returns the stream header version (1 or 2).
func (d *Decoder) Version() int { return d.version }

// Kind returns the sender's advertised filter family (KindUnknown on v1
// streams).
func (d *Decoder) Kind() FilterKind { return d.kind }

// MaxLag returns the sender's advertised m_max_lag bound in points
// (0 = unbounded, and always 0 on v1 streams).
func (d *Decoder) MaxLag() int { return d.maxLag }

// Retune reports whether the sender advertised the retune capability
// (flagRetune): the stream may carry opRetune records, and the sender
// accepts ε renegotiations on the reverse channel.
func (d *Decoder) Retune() bool { return d.retune }

// EffectiveEpsilon returns the sender's newest announced effective
// per-dimension ε, or nil when no retune record has arrived (the
// handshake contract stands). Do not modify.
func (d *Decoder) EffectiveEpsilon() []float64 { return d.effEps }

// ShedStride returns the sender's current decimation stride (0 = not
// decimating, k ≥ 2 = every k-th point dropped ahead of the filter).
func (d *Decoder) ShedStride() int { return d.shedStride }

// ShedTotal returns the cumulative count of points the sender reported
// decimating ahead of its filter.
func (d *Decoder) ShedTotal() uint64 { return d.shedTotal }

// RetuneGen counts the retune records consumed so far; a receiver
// polling between segments compares generations to notice changes.
func (d *Decoder) RetuneGen() int { return d.retuneGen }

// readRetune consumes one opRetune payload into the decoder's retune
// state.
func (d *Decoder) readRetune() error {
	if d.effEps == nil {
		d.effEps = make([]float64, d.dim)
	}
	for i := range d.effEps {
		v, err := d.readFloat()
		if err != nil {
			return fmt.Errorf("%w: truncated retune record", ErrFormat)
		}
		d.effEps[i] = v
	}
	stride, err := binary.ReadUvarint(d.br)
	if err != nil || stride == 1 || stride > 1<<20 {
		return fmt.Errorf("%w: bad retune stride", ErrFormat)
	}
	shed, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fmt.Errorf("%w: truncated retune record", ErrFormat)
	}
	d.shedStride = int(stride)
	d.shedTotal = shed
	d.retuneGen++
	return nil
}

func (d *Decoder) readFloat() (float64, error) {
	if _, err := io.ReadFull(d.br, d.buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:])), nil
}

func (d *Decoder) readVec() ([]float64, error) {
	x := d.newVec()
	for i := range x {
		v, err := d.readFloat()
		if err != nil {
			return nil, err
		}
		x[i] = v
	}
	return x, nil
}

// Next returns the next segment, or io.EOF after the stream terminator.
// opRetune records are consumed internally (they update the decoder's
// retune state, observable via EffectiveEpsilon/ShedStride/ShedTotal),
// so callers only ever see segments.
func (d *Decoder) Next() (core.Segment, error) {
	if d.done {
		return core.Segment{}, io.EOF
	}
	op, err := d.br.ReadByte()
	if err != nil {
		return core.Segment{}, fmt.Errorf("%w: truncated stream: %v", ErrFormat, err)
	}
	for op == opRetune {
		// Retune records are only valid on streams that advertised the
		// capability; elsewhere the op is as unknown as it would be to an
		// old decoder.
		if !d.retune {
			return core.Segment{}, fmt.Errorf("%w: unknown op %d", ErrFormat, op)
		}
		if err := d.readRetune(); err != nil {
			return core.Segment{}, err
		}
		if op, err = d.br.ReadByte(); err != nil {
			return core.Segment{}, fmt.Errorf("%w: truncated stream: %v", ErrFormat, err)
		}
	}
	var s core.Segment
	if op != opEnd {
		pts, err := binary.ReadUvarint(d.br)
		if err != nil || pts > 1<<40 {
			return s, fmt.Errorf("%w: bad segment point count", ErrFormat)
		}
		s.Points = int(pts)
	}
	switch op {
	case opEnd:
		d.done = true
		return core.Segment{}, io.EOF
	case opConstant:
		if s.T0, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated constant segment", ErrFormat)
		}
		if s.T1, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated constant segment", ErrFormat)
		}
		if s.X0, err = d.readVec(); err != nil {
			return s, fmt.Errorf("%w: truncated constant segment", ErrFormat)
		}
		s.X1 = s.X0
	case opConnected:
		if !d.haveLast {
			return s, fmt.Errorf("%w: connected segment with no predecessor", ErrFormat)
		}
		s.T0 = d.lastT
		s.X0 = d.newVec()
		copy(s.X0, d.lastX)
		s.Connected = true
		if s.T1, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated connected segment", ErrFormat)
		}
		if s.X1, err = d.readVec(); err != nil {
			return s, fmt.Errorf("%w: truncated connected segment", ErrFormat)
		}
	case opPoint:
		if s.T0, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated point segment", ErrFormat)
		}
		s.T1 = s.T0
		if s.X0, err = d.readVec(); err != nil {
			return s, fmt.Errorf("%w: truncated point segment", ErrFormat)
		}
		s.X1 = s.X0
	case opDisconnected:
		if s.T0, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated segment", ErrFormat)
		}
		if s.X0, err = d.readVec(); err != nil {
			return s, fmt.Errorf("%w: truncated segment", ErrFormat)
		}
		if s.T1, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated segment", ErrFormat)
		}
		if s.X1, err = d.readVec(); err != nil {
			return s, fmt.Errorf("%w: truncated segment", ErrFormat)
		}
	case opUpdate:
		// Provisional updates are a v2 extension; on a v1 stream the op
		// is as malformed as it would be to a v1 decoder.
		if d.version < 2 {
			return s, fmt.Errorf("%w: unknown op %d", ErrFormat, op)
		}
		if s.T0, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated update", ErrFormat)
		}
		if s.X0, err = d.readVec(); err != nil {
			return s, fmt.Errorf("%w: truncated update", ErrFormat)
		}
		if s.T1, err = d.readFloat(); err != nil {
			return s, fmt.Errorf("%w: truncated update", ErrFormat)
		}
		if s.X1, err = d.readVec(); err != nil {
			return s, fmt.Errorf("%w: truncated update", ErrFormat)
		}
		s.Provisional = true
		// The chain state is deliberately not advanced: the final segment
		// superseding this update chains to the last finalized segment.
		return s, nil
	default:
		return s, fmt.Errorf("%w: unknown op %d", ErrFormat, op)
	}
	d.lastT = s.T1
	d.lastX = append(d.lastX[:0], s.X1...)
	d.haveLast = true
	return s, nil
}

// ReadAll drains the decoder into a slice.
func ReadAll(d *Decoder) ([]core.Segment, error) {
	var segs []core.Segment
	for {
		s, err := d.Next()
		if err == io.EOF {
			return segs, nil
		}
		if err != nil {
			return segs, err
		}
		segs = append(segs, s)
	}
}

// EncodeAll is a convenience wrapper writing a whole approximation and
// returning the encoded byte count.
func EncodeAll(w io.Writer, eps []float64, constant bool, segs []core.Segment) (int64, error) {
	e, err := NewEncoder(w, eps, constant)
	if err != nil {
		return 0, err
	}
	for _, s := range segs {
		if err := e.WriteSegment(s); err != nil {
			return e.BytesWritten(), err
		}
	}
	if err := e.Close(); err != nil {
		return e.BytesWritten(), err
	}
	return e.BytesWritten(), nil
}

// RawSize returns the bytes needed to ship n points of dimensionality dim
// without filtering (one float64 timestamp plus dim float64 values per
// point) — the baseline for byte-level compression ratios.
func RawSize(n, dim int) int64 {
	return int64(n) * 8 * int64(1+dim)
}
