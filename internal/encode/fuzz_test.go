package encode

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

// encodeSample builds a representative valid stream for corruption tests.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	signal := gen.SSTLike(400, 17)
	f, err := core.NewSlide([]float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := core.Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := EncodeAll(&buf, []float64{0.05}, false, segs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads a possibly corrupt stream to the end, returning the first
// error. It must never panic.
func drain(raw []byte) error {
	d, err := NewDecoder(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	for {
		if _, err := d.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestDecoderTruncationEveryOffset cuts the stream at every byte offset:
// the decoder must either finish cleanly (only possible at the full
// length) or return an error — never panic, never loop.
func TestDecoderTruncationEveryOffset(t *testing.T) {
	raw := encodeSample(t)
	for cut := 0; cut < len(raw); cut++ {
		if err := drain(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(raw))
		}
	}
	if err := drain(raw); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}

// TestDecoderRandomCorruption flips random bytes; the decoder must never
// panic. (A flip may survive decoding when it only perturbs a float
// payload — that is expected; checksums are out of scope for this
// format.)
func TestDecoderRandomCorruption(t *testing.T) {
	raw := encodeSample(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), raw...)
		flips := 1 + rng.Intn(8)
		for k := 0; k < flips; k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		_ = drain(mut) // must not panic or hang
	}
}

// TestDecoderRandomGarbage feeds pure noise.
func TestDecoderRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		raw := make([]byte, rng.Intn(200))
		rng.Read(raw)
		_ = drain(raw) // must not panic
	}
}
