package encode

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Records extend the frame layout with an integrity checksum, for streams
// that outlive the process that wrote them (an on-disk write-ahead log,
// as opposed to a TCP session where the transport already checksums).
// Each record is
//
//	uvarint payload length | payload | crc32c(payload) (4 bytes LE)
//
// and the reader distinguishes a clean end (io.EOF exactly on a record
// boundary) from a torn tail (ErrTorn: the file ends inside a record, or
// the checksum does not match) so recovery can truncate the tail and keep
// everything before it.

// ErrTorn reports a record cut off or corrupted mid-stream — the state an
// append-only log is left in by a crash during the last write. It wraps
// ErrFormat, so generic corruption checks keep matching.
var ErrTorn = fmt.Errorf("%w: torn record", ErrFormat)

// castagnoli is the CRC-32C table used by the record trailer (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordWriter frames each WriteRecord as one checksummed record on the
// underlying writer, using a single underlying Write per record. The
// assembly buffer comes from the shared framing pool, so any number of
// concurrent wal shards write records without steady-state allocation.
type RecordWriter struct {
	w io.Writer
}

// NewRecordWriter returns a RecordWriter over w.
func NewRecordWriter(w io.Writer) *RecordWriter { return &RecordWriter{w: w} }

// WriteRecord writes p as one record, returning the number of bytes put
// on the underlying writer (prefix and trailer included). Empty records
// are valid and survive the round trip.
func (rw *RecordWriter) WriteRecord(p []byte) (int, error) {
	if len(p) > MaxFrame {
		return 0, fmt.Errorf("%w: record of %d bytes exceeds %d", ErrFormat, len(p), MaxFrame)
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(p)))
	bp := scratch.Get().(*[]byte)
	buf := append((*bp)[:0], tmp[:n]...)
	buf = append(buf, p...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(p, castagnoli))
	buf = append(buf, crc[:]...)
	k, err := rw.w.Write(buf)
	*bp = buf
	scratch.Put(bp)
	return k, err
}

// RecordReader reads records written by RecordWriter, tracking the byte
// offset of the last cleanly read record so a torn tail can be truncated
// away.
type RecordReader struct {
	br       *bufio.Reader
	buf      []byte
	consumed int64
}

// NewRecordReader returns a RecordReader over r. If r is already a
// *bufio.Reader it is used directly.
func NewRecordReader(r io.Reader) *RecordReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &RecordReader{br: br}
}

// Offset returns the stream offset just after the last record that read
// back cleanly — the length to truncate a torn log file to.
func (rr *RecordReader) Offset() int64 { return rr.consumed }

// ReadRecord returns the next record's payload. The slice is only valid
// until the next call. A clean end of stream is io.EOF; a stream ending
// inside a record, an oversized length, or a checksum mismatch is
// ErrTorn.
func (rr *RecordReader) ReadRecord() ([]byte, error) {
	n, lenBytes, err := ReadUvarintCounted(rr.br)
	if err != nil {
		if err == io.EOF && lenBytes == 0 {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: bad length: %v", ErrTorn, err)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: record of %d bytes exceeds %d", ErrTorn, n, MaxFrame)
	}
	need := int(n) + 4
	if cap(rr.buf) < need {
		rr.buf = make([]byte, need)
	}
	rr.buf = rr.buf[:need]
	if _, err := io.ReadFull(rr.br, rr.buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTorn, err)
	}
	payload := rr.buf[:n]
	want := binary.LittleEndian.Uint32(rr.buf[n:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum %#x, want %#x", ErrTorn, got, want)
	}
	rr.consumed += int64(lenBytes + need)
	return payload, nil
}

// ReadUvarintCounted decodes a uvarint from br, also returning how many
// bytes it occupied — for byte-exact offset accounting (torn-tail
// truncation) that bufio's read-ahead would otherwise obscure.
func ReadUvarintCounted(br *bufio.Reader) (v uint64, n int, err error) {
	for shift := uint(0); ; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			return 0, n, err
		}
		n++
		if shift >= 64 {
			return 0, n, errors.New("uvarint overflows 64 bits")
		}
		if b < 0x80 {
			if shift == 63 && b > 1 {
				return 0, n, errors.New("uvarint overflows 64 bits")
			}
			return v | uint64(b)<<shift, n, nil
		}
		v |= uint64(b&0x7f) << shift
	}
}
