package encode

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestRecordRoundTrip writes a mix of record sizes (empty included) and
// reads them back, checking payloads and the running clean offset.
func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"),
		{},
		bytes.Repeat([]byte{0xAB}, 300), // multi-byte length prefix
		[]byte("tail"),
	}
	var buf bytes.Buffer
	rw := NewRecordWriter(&buf)
	total := 0
	for _, p := range payloads {
		n, err := rw.WriteRecord(p)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != buf.Len() {
		t.Fatalf("reported %d bytes written, buffer holds %d", total, buf.Len())
	}
	rr := NewRecordReader(bytes.NewReader(buf.Bytes()))
	for i, want := range payloads {
		got, err := rr.ReadRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %q, want %q", i, got, want)
		}
	}
	if _, err := rr.ReadRecord(); err != io.EOF {
		t.Fatalf("after last record: got %v, want io.EOF", err)
	}
	if rr.Offset() != int64(buf.Len()) {
		t.Fatalf("clean offset %d, want %d", rr.Offset(), buf.Len())
	}
}

// TestRecordTornTail truncates the stream at every interior byte offset:
// the reader must recover every full record before the cut, report
// ErrTorn (never a clean EOF) for the partial one, and leave Offset at
// the last record boundary.
func TestRecordTornTail(t *testing.T) {
	payloads := [][]byte{[]byte("first"), []byte("second record"), []byte("third")}
	var buf bytes.Buffer
	rw := NewRecordWriter(&buf)
	var bounds []int64 // clean offsets after each record
	for _, p := range payloads {
		if _, err := rw.WriteRecord(p); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, int64(buf.Len()))
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		rr := NewRecordReader(bytes.NewReader(full[:cut]))
		whole, boundary := 0, cut == 0
		for whole < len(bounds) && int64(cut) >= bounds[whole] {
			if int64(cut) == bounds[whole] {
				boundary = true
			}
			whole++ // records entirely before the cut
		}
		for i := 0; i < whole; i++ {
			got, err := rr.ReadRecord()
			if err != nil {
				t.Fatalf("cut %d: record %d: %v", cut, i, err)
			}
			if !bytes.Equal(got, payloads[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		_, err := rr.ReadRecord()
		if boundary {
			// A cut exactly between records is indistinguishable from a
			// clean close — and must read as one.
			if err != io.EOF {
				t.Fatalf("cut %d: got %v, want io.EOF at record boundary", cut, err)
			}
		} else if !errors.Is(err, ErrTorn) {
			t.Fatalf("cut %d: got %v, want ErrTorn", cut, err)
		}
		wantOff := int64(0)
		if whole > 0 {
			wantOff = bounds[whole-1]
		}
		if rr.Offset() != wantOff {
			t.Fatalf("cut %d: offset %d, want %d", cut, rr.Offset(), wantOff)
		}
	}
}

// TestRecordCorruption flips every byte of a two-record stream in turn:
// reading must surface ErrTorn (or recover untouched records), never
// panic, and never return a payload that fails the equality check
// silently.
func TestRecordCorruption(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRecordWriter(&buf)
	if _, err := rw.WriteRecord([]byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.WriteRecord([]byte("payload-two")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		raw := append([]byte(nil), full...)
		raw[i] ^= 0x5A
		rr := NewRecordReader(bytes.NewReader(raw))
		for {
			p, err := rr.ReadRecord()
			if err != nil {
				break // io.EOF, ErrTorn — both acceptable ends
			}
			if s := string(p); s != "payload-one" && s != "payload-two" {
				// A flipped length byte can reframe the stream, but the
				// checksum must catch the reframed payload.
				t.Fatalf("byte %d: corrupted payload %q passed the checksum", i, p)
			}
		}
	}
}

// TestRecordTooLarge checks the writer refuses oversized records.
func TestRecordTooLarge(t *testing.T) {
	rw := NewRecordWriter(io.Discard)
	if _, err := rw.WriteRecord(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}
