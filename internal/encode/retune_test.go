package encode

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// TestRetuneRoundTrip streams segments interleaved with opRetune
// records and checks the decoder surfaces the newest retune state while
// returning only the segments.
func TestRetuneRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoderHeader(&buf, Header{Epsilon: []float64{0.5}, Retune: true})
	if err != nil {
		t.Fatal(err)
	}
	s1 := core.Segment{T0: 0, T1: 1, X0: []float64{0}, X1: []float64{1}, Points: 2}
	s2 := core.Segment{T0: 2, T1: 3, X0: []float64{1}, X1: []float64{0}, Points: 2}
	if err := e.WriteSegment(s1); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRetune([]float64{0.75}, 2, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRetune([]float64{1.25}, 0, 25); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteSegment(s2); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Retune() {
		t.Fatal("decoder lost the retune capability flag")
	}
	if d.EffectiveEpsilon() != nil {
		t.Fatalf("effective ε %v before any retune record", d.EffectiveEpsilon())
	}
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if gen := d.RetuneGen(); gen != 0 {
		t.Fatalf("retune gen %d before the retune records were read", gen)
	}
	// The second Next crosses both retune records; only the newest
	// state must be visible.
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if eff := d.EffectiveEpsilon(); len(eff) != 1 || eff[0] != 1.25 {
		t.Fatalf("effective ε %v, want [1.25]", eff)
	}
	if d.ShedStride() != 0 || d.ShedTotal() != 25 {
		t.Fatalf("stride/shed = %d/%d, want 0/25", d.ShedStride(), d.ShedTotal())
	}
	if d.RetuneGen() != 2 {
		t.Fatalf("retune gen %d, want 2", d.RetuneGen())
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next at stream end: %v, want EOF", err)
	}
}

// TestRetuneRequiresFlag pins both compatibility directions: an encoder
// without the handshake flag refuses to emit opRetune, and a decoder
// treats opRetune on an unflagged stream as corruption.
func TestRetuneRequiresFlag(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRetune([]float64{1}, 0, 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("WriteRetune without flagRetune: %v, want ErrFormat", err)
	}

	// Splice a raw opRetune byte into an unflagged stream: the decoder
	// must reject it rather than silently skipping unknown state.
	var spliced bytes.Buffer
	e2, err := NewEncoder(&spliced, []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Flush(); err != nil {
		t.Fatal(err)
	}
	spliced.WriteByte(opRetune)
	d, err := NewDecoder(&spliced)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("opRetune on unflagged stream: %v, want ErrFormat", err)
	}
}

// TestRetuneHeaderIgnoredByPlainStreams checks a flagged header with no
// retune records decodes exactly like a plain stream — the capability
// bit alone must not change anything.
func TestRetuneHeaderIgnoredByPlainStreams(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoderHeader(&buf, Header{Epsilon: []float64{0.25}, Retune: true})
	if err != nil {
		t.Fatal(err)
	}
	seg := core.Segment{T0: 0, T1: 4, X0: []float64{1}, X1: []float64{2}, Points: 5}
	if err := e.WriteSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].T1 != 4 {
		t.Fatalf("decoded %+v, want the one segment back", got)
	}
	if d.EffectiveEpsilon() != nil || d.ShedTotal() != 0 {
		t.Fatal("retune state invented on a stream with no retune records")
	}
}

// TestRetuneRejectsBadRecords pins the validation on the payload.
func TestRetuneRejectsBadRecords(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoderHeader(&buf, Header{Epsilon: []float64{0.5}, Retune: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRetune([]float64{1, 2}, 0, 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("dimension-mismatched retune: %v, want ErrFormat", err)
	}
	if err := e.WriteRetune([]float64{1}, 1, 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("stride 1 retune: %v, want ErrFormat", err)
	}
	if err := e.WriteRetune([]float64{1}, -2, 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("negative stride retune: %v, want ErrFormat", err)
	}
}
