package encode

import "io"

// CountingWriter counts the bytes written through it — the module's one
// implementation of the wrapper the codec, the network client, and the
// server all need for wire accounting.
type CountingWriter struct {
	w io.Writer
	n int64
}

// NewCountingWriter returns a counting wrapper over w.
func NewCountingWriter(w io.Writer) *CountingWriter { return &CountingWriter{w: w} }

func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// BytesWritten returns the bytes written so far.
func (c *CountingWriter) BytesWritten() int64 { return c.n }

// CountingReader counts the bytes read through it.
type CountingReader struct {
	r io.Reader
	n int64
}

// NewCountingReader returns a counting wrapper over r.
func NewCountingReader(r io.Reader) *CountingReader { return &CountingReader{r: r} }

func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// BytesRead returns the bytes read so far.
func (c *CountingReader) BytesRead() int64 { return c.n }
