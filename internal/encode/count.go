package encode

import (
	"io"
	"net"
)

// CountingWriter counts the bytes written through it — the module's one
// implementation of the wrapper the codec, the network client, and the
// server all need for wire accounting. Over a TCP connection it also
// exposes gather writes (WriteBuffers), so framing layers can hand the
// kernel a header and a payload in one writev instead of copying them
// into a contiguous scratch buffer first.
type CountingWriter struct {
	w   io.Writer
	n   int64
	tcp *net.TCPConn // non-nil when w reaches a real writev
	vec net.Buffers  // reused gather slice (backed by vecbuf)

	vecbuf [2][]byte
}

// NewCountingWriter returns a counting wrapper over w.
func NewCountingWriter(w io.Writer) *CountingWriter {
	cw := &CountingWriter{w: w}
	if tc, ok := w.(*net.TCPConn); ok {
		cw.tcp = tc
	}
	return cw
}

func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Vectored reports whether WriteBuffers reaches a genuine gather
// syscall. Framing layers check it once at construction and fall back
// to a pooled copy otherwise, preserving their one-Write-per-frame
// contract on pipes and test writers.
func (c *CountingWriter) Vectored() bool { return c.tcp != nil }

// WriteBuffers writes hdr then p as a single gather write (writev on
// the TCP connection), so a frame costs zero userspace copies. Only
// valid when Vectored reports true.
func (c *CountingWriter) WriteBuffers(hdr, p []byte) (int, error) {
	c.vecbuf[0], c.vecbuf[1] = hdr, p
	c.vec = net.Buffers(c.vecbuf[:])
	nn, err := c.vec.WriteTo(c.tcp)
	c.n += nn
	return int(nn), err
}

// BytesWritten returns the bytes written so far.
func (c *CountingWriter) BytesWritten() int64 { return c.n }

// BuffersWriter is the gather-write capability FrameWriter probes for:
// writers that can emit a frame header and payload in one vectored
// syscall without an intermediate copy. *CountingWriter over a TCP
// connection implements it.
type BuffersWriter interface {
	Vectored() bool
	WriteBuffers(hdr, p []byte) (int, error)
}

// CountingReader counts the bytes read through it.
type CountingReader struct {
	r io.Reader
	n int64
}

// NewCountingReader returns a counting wrapper over r.
func NewCountingReader(r io.Reader) *CountingReader { return &CountingReader{r: r} }

func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// BytesRead returns the bytes read so far.
func (c *CountingReader) BytesRead() int64 { return c.n }
