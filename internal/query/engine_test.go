package query

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/sketch"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

// shapes are the oracle workloads: one signal per paper-style stream
// family, each long enough to cross several summary windows.
func shapes(n int) map[string][]core.Point {
	return map[string][]core.Point{
		"walk":   gen.RandomWalk(gen.WalkConfig{N: n, P: 0.5, MaxDelta: 0.6, Seed: 11}),
		"steps":  gen.Steps(n, 40, 3.5, 12),
		"spikes": gen.Spikes(n, 97, 25, 13),
		"sine":   gen.Sine(n, 10, 480, 0.2, 14),
	}
}

func ingestShapes(t *testing.T, db *tsdb.Archive, eps float64, n int) map[string][]core.Point {
	t.Helper()
	sigs := shapes(n)
	for name, sig := range sigs {
		f, err := core.NewSlide([]float64{eps})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Ingest(name, f, sig); err != nil {
			t.Fatal(err)
		}
	}
	return sigs
}

// foldOracle reconstructs the canonical samples of every stored segment
// in range — the SCAN-and-fold reference the pushdown must agree with.
func foldOracle(sr *tsdb.Series, dim int, t0, t1 float64) (agg sketch.Agg, vals []float64) {
	for _, seg := range sr.Segments() {
		lo, hi, _, _, ok := sketch.SegRange(seg, dim, t0, t1)
		if !ok {
			continue
		}
		a := sketch.Agg{Min: math.Inf(1), Max: math.Inf(-1), Segments: 1,
			Covered: math.Min(seg.T1, t1) - math.Max(seg.T0, t0)}
		for i := lo; i <= hi; i++ {
			var f float64
			if seg.Points > 1 {
				f = float64(i) / float64(seg.Points-1)
			}
			v := seg.X0[dim] + f*(seg.X1[dim]-seg.X0[dim])
			a.Min = math.Min(a.Min, v)
			a.Max = math.Max(a.Max, v)
			a.Sum += v
			a.Count++
			vals = append(vals, v)
		}
		agg.Join(a)
	}
	return agg, vals
}

func exactQuantile(sorted []float64, q float64) float64 {
	i := int(math.Round(q * float64(len(sorted)-1)))
	return sorted[i]
}

// TestAggregateMatchesOracle checks, per shape, that the engine's
// aggregate equals the SCAN-and-fold reference over the reconstruction
// and sits within the composed ±ε of the raw signal's statistics.
func TestAggregateMatchesOracle(t *testing.T) {
	const eps = 0.5
	db := tsdb.New()
	sigs := ingestShapes(t, db, eps, 3000)
	e := New(db)
	rng := rand.New(rand.NewSource(5))
	for name, sig := range sigs {
		sr, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			end := sig[len(sig)-1].T
			t0 := rng.Float64() * end
			t1 := t0 + rng.Float64()*(end-t0)
			if trial == 0 {
				t0, t1 = math.Inf(-1), math.Inf(1)
			}
			got, err := e.Aggregate(name, 0, t0, t1)
			want, _ := foldOracle(sr, 0, t0, t1)
			if want.Segments == 0 {
				if !errors.Is(err, tsdb.ErrNoData) {
					t.Fatalf("%s trial %d: want ErrNoData, got %v", name, trial, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			g := got.Agg
			if g.Min != want.Min || g.Max != want.Max || g.Count != want.Count || g.Segments != want.Segments {
				t.Fatalf("%s trial %d [%v,%v]: got %+v want %+v", name, trial, t0, t1, g, want)
			}
			if math.Abs(g.Sum-want.Sum) > 1e-6*math.Max(1, math.Abs(want.Sum)) {
				t.Fatalf("%s trial %d: sum %v vs %v", name, trial, g.Sum, want.Sum)
			}
			// Composed bound against the raw signal over the full range:
			// the reconstruction's extremes and mean are within ±ε.
			if trial == 0 {
				rawMin, rawMax, rawSum := math.Inf(1), math.Inf(-1), 0.0
				for _, p := range sig {
					rawMin = math.Min(rawMin, p.X[0])
					rawMax = math.Max(rawMax, p.X[0])
					rawSum += p.X[0]
				}
				if g.Count != float64(len(sig)) {
					t.Fatalf("%s: reconstruction count %v, raw %d", name, g.Count, len(sig))
				}
				const tiny = 1e-9
				if math.Abs(g.Min-rawMin) > eps+tiny || math.Abs(g.Max-rawMax) > eps+tiny {
					t.Fatalf("%s: min/max %v/%v beyond ±ε of raw %v/%v", name, g.Min, g.Max, rawMin, rawMax)
				}
				if math.Abs(g.Mean()-rawSum/float64(len(sig))) > eps+tiny {
					t.Fatalf("%s: mean %v beyond ±ε of raw %v", name, g.Mean(), rawSum/float64(len(sig)))
				}
			}
		}
	}
}

// TestQuantilesWithinComposedBand checks, per shape, that both the
// reconstruction's and the raw signal's exact quantiles fall inside the
// reported bands (the raw one needs the full composed band; the
// reconstruction fits the unwidened sketch band).
func TestQuantilesWithinComposedBand(t *testing.T) {
	const eps = 0.5
	db := tsdb.New()
	sigs := ingestShapes(t, db, eps, 3000)
	e := New(db)
	qs := []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1}
	rng := rand.New(rand.NewSource(7))
	for name, sig := range sigs {
		sr, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 15; trial++ {
			end := sig[len(sig)-1].T
			t0 := rng.Float64() * end / 2
			t1 := t0 + rng.Float64()*(end-t0)
			full := trial == 0
			if full {
				t0, t1 = math.Inf(-1), math.Inf(1)
			}
			res, err := e.Quantiles(name, 0, t0, t1, qs)
			_, vals := foldOracle(sr, 0, t0, t1)
			if len(vals) == 0 {
				if !errors.Is(err, tsdb.ErrNoData) {
					t.Fatalf("%s trial %d: want ErrNoData, got %v", name, trial, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			sort.Float64s(vals)
			var raw []float64
			if full {
				for _, p := range sig {
					raw = append(raw, p.X[0])
				}
				sort.Float64s(raw)
			}
			const tiny = 1e-9
			for i, q := range qs {
				ans := res.Quantiles[i]
				truth := exactQuantile(vals, q)
				// The sketch band before ε widening must already hold the
				// reconstruction's quantile.
				if truth < ans.Lo+res.Epsilon-tiny || truth > ans.Hi-res.Epsilon+tiny {
					t.Fatalf("%s trial %d q=%v: reconstruction quantile %v outside sketch band [%v, %v]",
						name, trial, q, truth, ans.Lo+res.Epsilon, ans.Hi-res.Epsilon)
				}
				// The composed band must hold the raw signal's quantile:
				// same count, pointwise ±ε ⇒ sorted sequences pointwise ±ε.
				if full {
					rawTruth := exactQuantile(raw, q)
					if rawTruth < ans.Lo-tiny || rawTruth > ans.Hi+tiny {
						t.Fatalf("%s q=%v: raw quantile %v outside composed band [%v, %v]",
							name, q, rawTruth, ans.Lo, ans.Hi)
					}
				}
			}
		}
	}
}

// TestFanoutAll checks the all-series plan: the joined aggregate equals
// the in-order fold of per-series answers, the pooled quantile band
// holds the pooled truth, and the result is stable across repeated runs
// (the concurrent fan-out must not leak scheduling into the answer).
func TestFanoutAll(t *testing.T) {
	const eps = 0.5
	db := tsdb.New()
	ingestShapes(t, db, eps, 1200)
	e := New(db)

	var want sketch.Agg
	var pooled []float64
	for _, name := range db.Names() {
		sr, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		agg, vals := foldOracle(sr, 0, math.Inf(-1), math.Inf(1))
		want.Join(agg)
		pooled = append(pooled, vals...)
	}
	sort.Float64s(pooled)

	first, err := e.Aggregate(All, 0, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if first.Series != 4 {
		t.Fatalf("Series = %d, want 4", first.Series)
	}
	g := first.Agg
	if g.Min != want.Min || g.Max != want.Max || g.Count != want.Count || g.Segments != want.Segments {
		t.Fatalf("fanout agg %+v, want %+v", g, want)
	}
	for run := 0; run < 10; run++ {
		again, err := e.Aggregate(All, 0, math.Inf(-1), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if again.Agg != first.Agg || again.Epsilon != first.Epsilon {
			t.Fatalf("run %d: fanout answer changed: %+v vs %+v", run, again.Agg, first.Agg)
		}
	}

	qs := []float64{0, 0.5, 0.95, 1}
	qr, err := e.Quantiles(All, 0, math.Inf(-1), math.Inf(1), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		truth := exactQuantile(pooled, q)
		const tiny = 1e-9
		if truth < qr.Quantiles[i].Lo+qr.Epsilon-tiny || truth > qr.Quantiles[i].Hi-qr.Epsilon+tiny {
			t.Fatalf("q=%v: pooled quantile %v outside band [%v, %v]",
				q, truth, qr.Quantiles[i].Lo, qr.Quantiles[i].Hi)
		}
	}
	for run := 0; run < 10; run++ {
		again, err := e.Quantiles(All, 0, math.Inf(-1), math.Inf(1), qs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if again.Quantiles[i] != qr.Quantiles[i] {
				t.Fatalf("run %d: fanout quantile changed: %+v vs %+v", run, again.Quantiles[i], qr.Quantiles[i])
			}
		}
	}
}

// TestMemMmapParity runs identical content through the heap store and
// the sealed mmap store (fresh and reopened) and requires bit-identical
// answers — the backend must never show through a query.
func TestMemMmapParity(t *testing.T) {
	const eps = 0.5
	memDB := tsdb.New()
	sigs := ingestShapes(t, memDB, eps, 3000)
	root := filepath.Join(t.TempDir(), "ext")

	mm, err := mmapstore.Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	mmapDB := tsdb.NewWithNamedStore(mm.Store)
	for name, sig := range sigs {
		f, err := core.NewSlide([]float64{eps})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := mmapDB.Ingest(name, f, sig)
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Seal(); err != nil {
			t.Fatal(err)
		}
	}

	check := func(t *testing.T, other *tsdb.Archive) {
		t.Helper()
		em, eo := New(memDB), New(other)
		qs := []float64{0, 0.25, 0.5, 0.9, 1}
		names := append(memDB.Names(), All)
		rng := rand.New(rand.NewSource(23))
		for _, name := range names {
			for trial := 0; trial < 10; trial++ {
				t0 := rng.Float64() * 2000
				t1 := t0 + rng.Float64()*(3000-t0)
				a1, err1 := em.Aggregate(name, 0, t0, t1)
				a2, err2 := eo.Aggregate(name, 0, t0, t1)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s [%v,%v]: agg err %v vs %v", name, t0, t1, err1, err2)
				}
				if err1 == nil && (a1.Agg != a2.Agg || a1.Epsilon != a2.Epsilon || a1.Series != a2.Series) {
					t.Fatalf("%s [%v,%v]: agg %+v vs %+v", name, t0, t1, a1, a2)
				}
				q1, err1 := em.Quantiles(name, 0, t0, t1, qs)
				q2, err2 := eo.Quantiles(name, 0, t0, t1, qs)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s [%v,%v]: quantile err %v vs %v", name, t0, t1, err1, err2)
				}
				if err1 != nil {
					continue
				}
				for i := range qs {
					if q1.Quantiles[i] != q2.Quantiles[i] {
						t.Fatalf("%s [%v,%v] q=%v: %+v vs %+v", name, t0, t1, qs[i], q1.Quantiles[i], q2.Quantiles[i])
					}
				}
			}
		}
	}
	t.Run("sealed", func(t *testing.T) { check(t, mmapDB) })

	// Reopen from disk: sidecars load from their files now.
	mm.Close()
	mm2, err := mmapstore.Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer mm2.Close()
	reDB := tsdb.NewWithNamedStore(mm2.Store)
	if n, err := mm2.LoadInto(reDB); err != nil || n != 4 {
		t.Fatalf("LoadInto: %d series, %v", n, err)
	}
	t.Run("reopened", func(t *testing.T) { check(t, reDB) })
}

// TestEngineErrors covers the rejection paths.
func TestEngineErrors(t *testing.T) {
	db := tsdb.New()
	e := New(db)
	if _, err := e.Aggregate("nope", 0, 0, 1); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := e.Aggregate(All, 0, 0, 1); !errors.Is(err, tsdb.ErrNoData) {
		t.Fatalf("empty archive fanout: %v", err)
	}
	ingestShapes(t, db, 0.5, 200)
	if _, err := e.Quantiles("walk", 0, 0, 100, []float64{1.5}); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
	if _, err := e.Aggregate("walk", 0, 1e9, 2e9); !errors.Is(err, tsdb.ErrNoData) {
		t.Fatalf("empty range: %v", err)
	}
	if _, err := e.Aggregate(All, 0, 1e9, 2e9); !errors.Is(err, tsdb.ErrNoData) {
		t.Fatalf("empty range fanout: %v", err)
	}
	c := e.Counters()
	if c.AggQueries == 0 || c.QuantileQueries == 0 {
		t.Fatalf("counters not advancing: %+v", c)
	}
}
