// Package query is the segment-native query engine: it plans a
// time-range aggregate or quantile query over the archive as sealed
// summary blocks plus walked edge/tail segments (tsdb's pushdown
// decomposition), fans multi-series queries out concurrently, and
// merges the partial answers in sorted-name order so every reply is
// deterministic down to the byte whatever the storage backend, cache
// state, or execution interleaving.
package query

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/pla-go/pla/internal/sketch"
	"github.com/pla-go/pla/internal/tsdb"
)

// All is the series name that fans a query out over every series in the
// archive.
const All = "*"

// Engine answers range queries against one archive and keeps the
// pushdown counters the server exports. It is safe for concurrent use.
type Engine struct {
	db *tsdb.Archive

	aggQueries      atomic.Int64
	quantileQueries atomic.Int64
	cachedWindows   atomic.Int64
	builtWindows    atomic.Int64
	walkedSegments  atomic.Int64
	tierHits        atomic.Int64
}

// New returns an engine over db.
func New(db *tsdb.Archive) *Engine { return &Engine{db: db} }

// Counters is a point-in-time snapshot of the engine's lifetime
// counters: how many pushdown queries ran and how their ranges were
// covered (summary windows served from a cache, windows built on
// demand, segments folded one by one).
type Counters struct {
	// AggQueries and QuantileQueries count answered pushdown queries by
	// kind (fan-out over * counts once, not per series).
	AggQueries      int64
	QuantileQueries int64
	// CachedWindows and BuiltWindows split the summary windows that
	// covered query ranges by whether they came from a cache/sidecar or
	// were recomputed from segments; their ratio is the pushdown hit
	// rate.
	CachedWindows int64
	BuiltWindows  int64
	// WalkedSegments counts segments folded closed-form one by one
	// (edges, unsealed tails, fallback) — the work pushdown did not
	// save.
	WalkedSegments int64
	// TierHits counts per-series query computations served from a
	// rollup tier instead of the base series.
	TierHits int64
}

// Counters snapshots the engine's counters.
func (e *Engine) Counters() Counters {
	return Counters{
		AggQueries:      e.aggQueries.Load(),
		QuantileQueries: e.quantileQueries.Load(),
		CachedWindows:   e.cachedWindows.Load(),
		BuiltWindows:    e.builtWindows.Load(),
		WalkedSegments:  e.walkedSegments.Load(),
		TierHits:        e.tierHits.Load(),
	}
}

func (e *Engine) record(stats tsdb.PushdownStats) {
	e.cachedWindows.Add(int64(stats.CachedWindows))
	e.builtWindows.Add(int64(stats.BuiltWindows))
	e.walkedSegments.Add(int64(stats.WalkedSegments))
}

// AggResult is one answered aggregate query.
type AggResult struct {
	// Agg holds the exact closed-form statistics of the canonical
	// reconstruction over the range (joined over every queried series).
	Agg sketch.Agg
	// Epsilon is the reconstruction's precision: the max filter ε of
	// the contributing series in the queried dimension.
	Epsilon float64
	// Stale is the worst staleness among the contributing series.
	Stale int
	// Series is how many series contributed data.
	Series int
	// Stats reports how the ranges were covered.
	Stats tsdb.PushdownStats
	// Tier is the rollup multiplier of the coarsest tier that served a
	// contributing series (0 = every series answered from base data).
	Tier int
	// CountSlack and ValueSlack are the tier-edge uncertainties the
	// reply's band composition must absorb (see tierSlack); zero for
	// base-served answers.
	CountSlack int
	ValueSlack float64
}

// QuantilesResult is one answered quantile query.
type QuantilesResult struct {
	// Quantiles holds one answer per requested q, each with a band the
	// true quantile is guaranteed inside.
	Quantiles []sketch.Quantile
	// Epsilon, Stale, Series, Stats, Tier, CountSlack and ValueSlack are
	// as in AggResult. The slacks are already folded into each
	// quantile's [Lo, Hi] band.
	Epsilon    float64
	Stale      int
	Series     int
	Stats      tsdb.PushdownStats
	Tier       int
	CountSlack int
	ValueSlack float64
}

// Aggregate answers min/max/sum/count/avg over [t0, t1] in dimension
// dim for the named series, or joined across every series when name is
// All. Per-series answers are computed concurrently and folded in
// sorted-name order (Join is exact, so the fold order only matters for
// byte-stable floating-point association).
func (e *Engine) Aggregate(name string, dim int, t0, t1 float64) (AggResult, error) {
	return e.AggregateBound(name, dim, t0, t1, 0)
}

// aggPart is one series' contribution to a bound-aware aggregate.
type aggPart struct {
	ans        tsdb.AggAnswer
	tier       int
	countSlack int
	valueSlack float64
}

// AggregateBound is Aggregate with an acceptable error bound: each
// queried series may be answered from the coarsest rollup tier whose
// precision fits inside bound and whose coverage spans the range (see
// TierFor), reading far fewer segments. The result's Epsilon is the
// bound of the data that actually answered — the tier's ε for
// tier-served series — and its slack fields carry the extra band width
// tier edges require. bound ≤ 0 asks for base precision.
func (e *Engine) AggregateBound(name string, dim int, t0, t1, bound float64) (AggResult, error) {
	e.aggQueries.Add(1)
	res := AggResult{}
	err := e.fanout(name,
		func(sr *tsdb.Series) (any, tsdb.PushdownStats, error) {
			target, mult := e.TierFor(sr, dim, t0, t1, bound)
			ans, err := target.RangeAgg(dim, t0, t1)
			p := aggPart{ans: ans, tier: mult}
			if mult > 0 {
				p.countSlack, p.valueSlack = tierSlack(target, dim, t0, t1)
				// A tier re-encodes data that may already have been
				// degraded past the base contract; carry the base's
				// effective-ε inflation into the tier-served bound too.
				p.ans.Epsilon += sr.EffExtra(dim)
			}
			return p, ans.Stats, err
		},
		func(sr *tsdb.Series, v any) {
			p := v.(aggPart)
			res.Agg.Join(p.ans.Agg)
			res.Epsilon = math.Max(res.Epsilon, p.ans.Epsilon)
			if p.tier > res.Tier {
				res.Tier = p.tier
			}
			res.CountSlack += p.countSlack
			res.ValueSlack = math.Max(res.ValueSlack, p.valueSlack)
			if st := sr.Staleness(); st > res.Stale {
				res.Stale = st
			}
			res.Series++
		}, &res.Stats)
	if err != nil {
		return AggResult{}, err
	}
	if res.Series == 0 {
		return AggResult{}, fmt.Errorf("%w in [%v, %v]", tsdb.ErrNoData, t0, t1)
	}
	return res, nil
}

// Quantiles answers the given quantiles over [t0, t1] in dimension dim
// for the named series, or over the union of every series' samples when
// name is All. Summaries merge in sorted-name order (a strict left
// fold), and the band widening uses the worst contributing filter ε, so
// the composed guarantee holds across series with different contracts.
func (e *Engine) Quantiles(name string, dim int, t0, t1 float64, qs []float64) (QuantilesResult, error) {
	return e.QuantilesBound(name, dim, t0, t1, qs, 0)
}

// quantilePart is one series' contribution to a bound-aware quantile
// query.
type quantilePart struct {
	sum        *sketch.Summary
	eps        float64
	countSlack int
	valueSlack float64
	tier       int
}

// QuantilesBound is Quantiles with an acceptable error bound, with the
// same tier selection as AggregateBound. Rank uncertainty from
// partially covered coarse segments is folded into each answer's band:
// the band is the union over q ∓ countSlack/N, widened by the value
// slack. bound ≤ 0 asks for base precision.
func (e *Engine) QuantilesBound(name string, dim int, t0, t1 float64, qs []float64, bound float64) (QuantilesResult, error) {
	e.quantileQueries.Add(1)
	for _, q := range qs {
		if math.IsNaN(q) || q < 0 || q > 1 {
			return QuantilesResult{}, fmt.Errorf("query: quantile %v outside [0, 1]", q)
		}
	}
	res := QuantilesResult{}
	merged := &sketch.Summary{}
	err := e.fanout(name,
		func(sr *tsdb.Series) (any, tsdb.PushdownStats, error) {
			target, mult := e.TierFor(sr, dim, t0, t1, bound)
			sum, stats, err := target.RangeSummary(dim, t0, t1)
			p := quantilePart{sum: sum, eps: target.QueryEpsilon()[dim], tier: mult}
			if mult > 0 {
				p.countSlack, p.valueSlack = tierSlack(target, dim, t0, t1)
				p.eps += sr.EffExtra(dim)
			}
			return p, stats, err
		},
		func(sr *tsdb.Series, v any) {
			p := v.(quantilePart)
			merged = sketch.Merge(merged, p.sum)
			res.Epsilon = math.Max(res.Epsilon, p.eps)
			if p.tier > res.Tier {
				res.Tier = p.tier
			}
			res.CountSlack += p.countSlack
			res.ValueSlack = math.Max(res.ValueSlack, p.valueSlack)
			if st := sr.Staleness(); st > res.Stale {
				res.Stale = st
			}
			res.Series++
		}, &res.Stats)
	if err != nil {
		return QuantilesResult{}, err
	}
	if res.Series == 0 || merged.N() == 0 {
		return QuantilesResult{}, fmt.Errorf("%w in [%v, %v]", tsdb.ErrNoData, t0, t1)
	}
	res.Quantiles = answerTierQuantiles(merged, res.Epsilon, qs, res.CountSlack, res.ValueSlack)
	return res, nil
}

// fanout plans the query: resolve the queried series, run compute on
// each — concurrently for All, since every series' pushdown takes only
// its own lock — then merge the partial answers strictly in sorted-name
// order so the reply bytes never depend on goroutine interleaving. A
// series with no data in range contributes nothing; any other error
// aborts the query.
func (e *Engine) fanout(name string,
	compute func(*tsdb.Series) (any, tsdb.PushdownStats, error),
	merge func(*tsdb.Series, any), stats *tsdb.PushdownStats) error {
	type part struct {
		sr  *tsdb.Series
		val any
		st  tsdb.PushdownStats
		err error
	}
	var parts []part
	if name != All {
		sr, err := e.db.Get(name)
		if err != nil {
			return err
		}
		parts = []part{{sr: sr}}
		parts[0].val, parts[0].st, parts[0].err = compute(sr)
	} else {
		names := e.db.Names() // sorted
		parts = make([]part, 0, len(names))
		for _, n := range names {
			if sr, err := e.db.Get(n); err == nil {
				parts = append(parts, part{sr: sr})
			} // else: dropped between Names and Get
		}
		var wg sync.WaitGroup
		for i := range parts {
			wg.Add(1)
			go func(p *part) {
				defer wg.Done()
				p.val, p.st, p.err = compute(p.sr)
			}(&parts[i])
		}
		wg.Wait()
	}
	for i := range parts {
		p := &parts[i]
		stats.Add(p.st)
		e.record(p.st)
		if p.err != nil {
			if name == All && errors.Is(p.err, tsdb.ErrNoData) {
				continue
			}
			return p.err
		}
		merge(p.sr, p.val)
	}
	return nil
}
