package query

import (
	"math"
	"sort"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/tsdb"
)

// tierWalk ingests a random walk at ε=1 through Swing and builds the
// {4,16} rollup ladder over it, returning the archive, the base series
// and the raw signal.
func tierWalk(t *testing.T, n int) (*tsdb.Archive, *tsdb.Series, []core.Point) {
	t.Helper()
	db := tsdb.New()
	db.EnableRollups([]int{4, 16})
	f, err := core.NewSwing([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	sig := gen.RandomWalk(gen.WalkConfig{N: n, P: 0.5, MaxDelta: 1.5, Seed: 9})
	sr, err := db.Ingest("w", f, sig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rollup("w"); err != nil {
		t.Fatal(err)
	}
	return db, sr, sig
}

// TestTierForSelection walks the planner through the whole decision
// ladder: bound semantics, coarsest-fitting-tier preference, coverage
// fallback, and the no-tier cases.
func TestTierForSelection(t *testing.T) {
	db, sr, sig := tierWalk(t, 6000)
	e := New(db)
	end := sig[len(sig)-1].T

	mult := func(target *tsdb.Series) int {
		_, m, _ := tsdb.ParseRollupName(target.Name())
		return m
	}

	// bound ≤ 0 means base precision; the base always answers.
	if got, m := e.TierFor(sr, 0, 0, end, 0); got != sr || m != 0 {
		t.Fatalf("bound 0: got %q mult %d, want base", got.Name(), m)
	}
	if got, m := e.TierFor(sr, 0, 0, end, -3); got != sr || m != 0 {
		t.Fatalf("bound <0: got %q mult %d, want base", got.Name(), m)
	}
	// A generous bound takes the coarsest tier.
	got, m := e.TierFor(sr, 0, 0, end, 100)
	if m != 16 || mult(got) != 16 {
		t.Fatalf("bound 100: got %q mult %d, want the 16× tier", got.Name(), m)
	}
	if hits := e.Counters().TierHits; hits != 1 {
		t.Fatalf("TierHits = %d after one tier-served plan", hits)
	}
	// A bound between the tiers' precisions lands on the finer one.
	if got, m := e.TierFor(sr, 0, 0, end, 5); m != 4 || mult(got) != 4 {
		t.Fatalf("bound 5: got %q mult %d, want the 4× tier", got.Name(), m)
	}
	// Tighter than every tier: base.
	if got, m := e.TierFor(sr, 0, 0, end, 2); got != sr || m != 0 {
		t.Fatalf("bound 2: got %q mult %d, want base", got.Name(), m)
	}
	// Negative dim asks for every dimension to fit.
	if _, m := e.TierFor(sr, -1, 0, end, 16); m != 16 {
		t.Fatalf("dim -1 bound 16: mult %d, want 16", m)
	}
	if got, m := e.TierFor(sr, -1, 0, end, 3); got != sr || m != 0 {
		t.Fatalf("dim -1 bound 3: got %q mult %d, want base", got.Name(), m)
	}
	// No overlap with the base span: base answers (and reports no data).
	if got, m := e.TierFor(sr, 0, end+1e6, end+2e6, 100); got != sr || m != 0 {
		t.Fatalf("disjoint range: got %q mult %d, want base", got.Name(), m)
	}
	// A series with no attached tiers answers itself.
	f, err := core.NewSwing([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.Ingest("plain", f, sig[:200])
	if err != nil {
		t.Fatal(err)
	}
	if got, m := e.TierFor(plain, 0, 0, end, 100); got != plain || m != 0 {
		t.Fatalf("tier-less series: got %q mult %d, want base", got.Name(), m)
	}

	// Tiers trail the finalized prefix: extend the base past the built
	// tiers and a query touching the fresh tail must fall back.
	f2, err := core.NewSwing([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	var tail []core.Point
	for i := 0; i < 500; i++ {
		tail = append(tail, core.Point{T: end + 1 + float64(i), X: []float64{float64(i % 7)}})
	}
	segs, err := core.Run(f2, tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Append(segs...); err != nil {
		t.Fatal(err)
	}
	if got, m := e.TierFor(sr, 0, 0, end+400, 100); got != sr || m != 0 {
		t.Fatalf("fresh tail: got %q mult %d, want base fallback", got.Name(), m)
	}
	// Clipped to the tier-covered prefix the tier serves again.
	if _, m := e.TierFor(sr, 0, 0, end/2, 100); m != 16 {
		t.Fatalf("covered prefix: mult %d, want 16", m)
	}
}

// TestEpsWithin pins the per-dimension and all-dimension bound checks.
func TestEpsWithin(t *testing.T) {
	eps := []float64{1, 4}
	cases := []struct {
		dim   int
		bound float64
		want  bool
	}{
		{0, 1, true},
		{0, 0.5, false},
		{1, 4, true},
		{1, 3.9, false},
		{2, 100, false},  // dimension out of range never fits
		{-1, 4, true},    // all dims fit
		{-1, 3.9, false}, // the widest dim decides
	}
	for _, c := range cases {
		if got := epsWithin(eps, c.dim, c.bound); got != c.want {
			t.Fatalf("epsWithin(%v, %d, %v) = %v, want %v", eps, c.dim, c.bound, got, c.want)
		}
	}
}

// TestTierSlack checks the edge-uncertainty accounting: zero for a
// range that spans the tier (no partially covered coarse segments),
// positive count and value for a range clipping coarse segments, and
// the all-dimension step maximum.
func TestTierSlack(t *testing.T) {
	db, _, sig := tierWalk(t, 6000)
	tier, ok := db.Tier("w", 16)
	if !ok {
		t.Fatal("16× tier missing")
	}
	if c, v := tierSlack(tier, 0, math.Inf(-1), math.Inf(1)); c != 0 || v != 0 {
		t.Fatalf("full span: slack (%d, %v), want zero", c, v)
	}
	// A range strictly inside the tier clips (at most) two coarse
	// segments; scan a few offsets so at least one genuinely cuts a
	// multi-point segment.
	end := sig[len(sig)-1].T
	var count int
	var value float64
	for off := 0.1; off < 0.9; off += 0.1 {
		c, v := tierSlack(tier, 0, end*off, end*(off+0.05))
		if c > count {
			count, value = c, v
		}
		if cn, vn := tierSlack(tier, -1, end*off, end*(off+0.05)); cn != c || vn < v {
			t.Fatalf("dim -1 slack (%d, %v) vs dim 0 (%d, %v)", cn, vn, c, v)
		}
	}
	if count == 0 || value == 0 {
		t.Fatalf("no interior range clipped a coarse segment: slack (%d, %v)", count, value)
	}
}

// TestAnswerTierQuantiles checks the band widening against the base
// path: zero slack reduces to AnswerQuantiles exactly, and any slack
// only ever widens — the widened band must contain the unwidened one.
func TestAnswerTierQuantiles(t *testing.T) {
	_, sr, _ := tierWalk(t, 3000)
	merged, _, err := sr.RangeSummary(0, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 1}
	base := tsdb.AnswerQuantiles(merged, 1, qs)
	same := answerTierQuantiles(merged, 1, qs, 0, 0)
	for i := range qs {
		if same[i] != base[i] {
			t.Fatalf("q=%v: zero slack diverged: %+v vs %+v", qs[i], same[i], base[i])
		}
	}
	wide := answerTierQuantiles(merged, 1, qs, 50, 0.75)
	for i := range qs {
		if wide[i].Lo > base[i].Lo-0.75 || wide[i].Hi < base[i].Hi+0.75 {
			t.Fatalf("q=%v: slack band [%v, %v] does not contain widened base [%v, %v]",
				qs[i], wide[i].Lo, wide[i].Hi, base[i].Lo-0.75, base[i].Hi+0.75)
		}
	}
}

// TestBoundAwareAnswers drives the tier paths through the engine's
// public bound-aware entry points: a tier-served answer must report the
// tier's precision plus edge slack, and its band must still hold the
// base reconstruction's truth. Then an effective-ε inflation on the
// base (a degraded ingest session) must widen tier-served answers too.
func TestBoundAwareAnswers(t *testing.T) {
	db, sr, sig := tierWalk(t, 6000)
	e := New(db)
	end := sig[len(sig)-1].T
	t0, t1 := end*0.15, end*0.85
	qs := []float64{0, 0.25, 0.5, 0.9, 1}

	ab, err := e.AggregateBound("w", 0, t0, t1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Tier != 16 {
		t.Fatalf("agg Tier = %d, want 16", ab.Tier)
	}
	if ab.Epsilon != 16 {
		t.Fatalf("agg Epsilon = %v, want the 16× tier's contract", ab.Epsilon)
	}
	base, vals := foldOracle(sr, 0, t0, t1)
	band := ab.Epsilon + ab.ValueSlack + 1e-9
	if math.Abs(ab.Agg.Min-base.Min) > band || math.Abs(ab.Agg.Max-base.Max) > band {
		t.Fatalf("tier min/max %v/%v beyond ±%v of base %v/%v",
			ab.Agg.Min, ab.Agg.Max, band, base.Min, base.Max)
	}
	if math.Abs(ab.Agg.Mean()-base.Mean()) > band {
		t.Fatalf("tier mean %v beyond ±%v of base %v", ab.Agg.Mean(), band, base.Mean())
	}

	qb, err := e.QuantilesBound("w", 0, t0, t1, qs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if qb.Tier != 16 || qb.CountSlack == 0 {
		t.Fatalf("quantile Tier = %d, CountSlack = %d; want a tier-served edge-clipped answer",
			qb.Tier, qb.CountSlack)
	}
	sort.Float64s(vals)
	for i, q := range qs {
		truth := exactQuantile(vals, q)
		if truth < qb.Quantiles[i].Lo-1e-9 || truth > qb.Quantiles[i].Hi+1e-9 {
			t.Fatalf("q=%v: base quantile %v outside tier band [%v, %v]",
				q, truth, qb.Quantiles[i].Lo, qb.Quantiles[i].Hi)
		}
	}

	// A degraded session inflated the base bound by 0.5: tier-served
	// answers re-encode that already-coarse data, so their reported
	// precision must absorb the inflation too.
	sr.NoteEffectiveEpsilon([]float64{1.5})
	ab2, err := e.AggregateBound("w", 0, t0, t1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := ab.Epsilon + 0.5; math.Abs(ab2.Epsilon-want) > 1e-12 {
		t.Fatalf("inflated agg Epsilon = %v, want %v", ab2.Epsilon, want)
	}
	qb2, err := e.QuantilesBound("w", 0, t0, t1, qs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := qb.Epsilon + 0.5; math.Abs(qb2.Epsilon-want) > 1e-12 {
		t.Fatalf("inflated quantile Epsilon = %v, want %v", qb2.Epsilon, want)
	}
	for i := range qs {
		if qb2.Quantiles[i].Lo > qb.Quantiles[i].Lo-0.5+1e-12 ||
			qb2.Quantiles[i].Hi < qb.Quantiles[i].Hi+0.5-1e-12 {
			t.Fatalf("q=%v: inflated band [%v, %v] narrower than pre-inflation [%v, %v] + 0.5",
				qs[i], qb2.Quantiles[i].Lo, qb2.Quantiles[i].Hi, qb.Quantiles[i].Lo, qb.Quantiles[i].Hi)
		}
	}
}
