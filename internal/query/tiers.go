// Bound-aware tier selection: a query that declares an acceptable
// error bound may be answered from a rollup tier — the same stream
// re-encoded at a coarser precision multiple, in far fewer segments —
// instead of the base series. The planner picks the coarsest tier whose
// composed bound still satisfies the request and whose coverage spans
// what the base could answer, falling back tier by tier to the base.
// Every answer carries the bound of the data that actually served it,
// plus an explicit slack for the one place a coarser encoding is not
// exchangeable with the base: the canonical sample grid of a partially
// covered coarse segment.
package query

import (
	"math"

	"github.com/pla-go/pla/internal/sketch"
	"github.com/pla-go/pla/internal/tsdb"
)

// TierFor resolves which series should answer a query over [t0, t1] in
// dimension dim (negative = all dimensions, the SCAN case) for base
// series sr, given the caller's acceptable error bound. It returns the
// coarsest attached rollup tier whose precision fits inside bound and
// whose coverage spans the base's answerable range, with its rollup
// multiplier; or sr itself with multiplier 0. bound ≤ 0 means "base
// precision", which the base always satisfies. A tier that serves a
// query counts as a tier hit.
func (e *Engine) TierFor(sr *tsdb.Series, dim int, t0, t1, bound float64) (*tsdb.Series, int) {
	if bound <= 0 {
		return sr, 0
	}
	tiers := e.db.Tiers(sr.Name())
	if len(tiers) == 0 {
		return sr, 0
	}
	// The base's answerable range: its span (provisional coverage
	// included) clipped to the query. A tier is only exchangeable for
	// the base if it covers all of it — tiers trail the finalized
	// prefix, so a query touching the fresh tail falls back.
	b0, b1, ok := sr.Span()
	if !ok {
		return sr, 0
	}
	eff0, eff1 := math.Max(t0, b0), math.Min(t1, b1)
	if eff0 > eff1 {
		return sr, 0 // no overlap; let the base path report no data
	}
	for _, tier := range tiers {
		if !epsWithin(tier.Epsilon(), dim, bound) {
			continue
		}
		s0, s1, ok := tier.Span()
		if !ok || s0 > eff0 || s1 < eff1 {
			continue
		}
		_, mult, _ := tsdb.ParseRollupName(tier.Name())
		e.tierHits.Add(1)
		return tier, mult
	}
	return sr, 0
}

// epsWithin reports whether a precision vector satisfies bound in the
// queried dimension — in every dimension when dim is negative.
func epsWithin(eps []float64, dim int, bound float64) bool {
	if dim >= 0 {
		return dim < len(eps) && eps[dim] <= bound
	}
	for _, e := range eps {
		if e > bound {
			return false
		}
	}
	return true
}

// tierSlack measures the honest extra uncertainty of answering [t0, t1]
// from a tier: the at-most-two coarse segments only partially inside
// the range. A coarse segment's canonical sample grid redistributes its
// base segments' samples across its whole span, so clipping it can move
// up to its full Points count across the range boundary (count), and
// the clipped chord endpoints can sit up to two per-sample value steps
// away from the base grid's (value). Fully covered segments contribute
// exactly (the rollup conserves their Points), so base answers — and
// tier answers to exactly-aligned ranges — get zero slack.
func tierSlack(tier *tsdb.Series, dim int, t0, t1 float64) (count int, value float64) {
	for _, seg := range tier.RangeEdges(t0, t1) {
		count += seg.Points
		if seg.Points > 1 {
			step := 0.0
			if dim >= 0 {
				step = math.Abs(seg.X1[dim]-seg.X0[dim]) / float64(seg.Points-1)
			} else {
				for d := range seg.X0 {
					step = math.Max(step, math.Abs(seg.X1[d]-seg.X0[d])/float64(seg.Points-1))
				}
			}
			value = math.Max(value, 2*step)
		}
	}
	return count, value
}

// answerTierQuantiles widens quantile answers for a tier-served query:
// besides the filter-ε widening every answer gets, the rank can shift
// by the count slack (the summary's N includes partially covered coarse
// segments' full weight), so each band is the union of the bands at
// q ∓ countSlack/N, further widened by the value slack. With zero slack
// it reduces exactly to the base-path answer.
func answerTierQuantiles(merged *sketch.Summary, eps float64, qs []float64, countSlack int, valueSlack float64) []sketch.Quantile {
	if countSlack == 0 && valueSlack == 0 {
		return tsdb.AnswerQuantiles(merged, eps, qs)
	}
	shift := float64(countSlack) / float64(merged.N())
	out := make([]sketch.Quantile, len(qs))
	for i, q := range qs {
		ans := merged.Query(q)
		lo := merged.Query(math.Max(q-shift, 0))
		hi := merged.Query(math.Min(q+shift, 1))
		ans.Lo = math.Min(ans.Lo, lo.Lo) - eps - valueSlack
		ans.Hi = math.Max(ans.Hi, hi.Hi) + eps + valueSlack
		out[i] = ans
	}
	return out
}
