// Package adaptive implements the precision-allocation idea of Olston,
// Jiang and Widom ("Adaptive filters for continuous queries over
// distributed data streams", SIGMOD 2003) — reference [21] of the paper,
// the system its cache baseline comes from — generalised to any of this
// library's filters.
//
// A Coordinator supervises many streams whose reconstructions feed an
// aggregate SUM with a global L∞ error budget E: as long as the
// per-stream precision widths satisfy Σ ε_i ≤ E, the sum of the
// reconstructions is within E of the sum of the true samples at any
// covered time. The coordinator starts with a uniform split and
// periodically reallocates: every width shrinks by a factor δ and the
// freed budget is redistributed proportionally to each stream's recent
// recording rate, so hard-to-compress streams receive loose bounds and
// stable streams tight ones — cutting total transmission without ever
// weakening the aggregate guarantee.
//
// Width changes re-negotiate the stream's filter (the previous filter is
// finished and its final segments flushed), mirroring the update messages
// a real coordinator would send; the extra recordings this costs are
// charged to the stream.
package adaptive

import (
	"errors"
	"fmt"
	"sort"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/recon"
)

// Errors returned by the coordinator.
var (
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("adaptive: invalid configuration")
	// ErrUnknown reports a push to an unregistered stream.
	ErrUnknown = errors.New("adaptive: unknown stream")
	// ErrFinished reports use after Finish.
	ErrFinished = errors.New("adaptive: coordinator finished")
)

// Config parameterises a Coordinator.
type Config struct {
	// Budget is the aggregate L∞ error bound E; the per-stream widths
	// always sum to at most E. Required, > 0.
	Budget float64
	// Streams names the participating streams. Required, non-empty.
	Streams []string
	// Period is the number of pushed points (across all streams) between
	// reallocations; default 64 × #streams.
	Period int
	// Delta is the fraction of the budget reclaimed and redistributed at
	// each reallocation, in (0, 1); default 0.25.
	Delta float64
	// NewFilter builds a stream's filter for a given width; default is
	// the swing filter (O(1) state per stream, as a coordinator would
	// want on constrained transmitters).
	NewFilter func(eps float64) (core.Filter, error)
}

// Coordinator allocates a global precision budget across streams.
// Not safe for concurrent use; wrap it or shard streams if needed.
type Coordinator struct {
	cfg      Config
	streams  map[string]*stream
	order    []string
	pushes   int
	rounds   int
	finished bool
}

type stream struct {
	name   string
	alloc  float64 // allocated width: Σ alloc = Budget exactly
	eps    float64 // actual filter width: always ≤ alloc
	filter core.Filter
	segs   []core.Segment
	// recordings consumed by filters already finished (renegotiations)
	spentRecordings int
	// recordings at the start of the current period, for the burden score
	periodBase int
}

// New returns a coordinator with the budget split uniformly.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("%w: budget must be positive", ErrConfig)
	}
	if len(cfg.Streams) == 0 {
		return nil, fmt.Errorf("%w: no streams", ErrConfig)
	}
	if cfg.Delta == 0 {
		cfg.Delta = 0.25
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("%w: delta must be in (0,1)", ErrConfig)
	}
	if cfg.Period == 0 {
		cfg.Period = 64 * len(cfg.Streams)
	}
	if cfg.Period < len(cfg.Streams) {
		return nil, fmt.Errorf("%w: period shorter than one point per stream", ErrConfig)
	}
	if cfg.NewFilter == nil {
		cfg.NewFilter = func(eps float64) (core.Filter, error) {
			return core.NewSwing([]float64{eps})
		}
	}
	c := &Coordinator{cfg: cfg, streams: make(map[string]*stream, len(cfg.Streams))}
	uniform := cfg.Budget / float64(len(cfg.Streams))
	for _, name := range cfg.Streams {
		if _, dup := c.streams[name]; dup {
			return nil, fmt.Errorf("%w: duplicate stream %q", ErrConfig, name)
		}
		f, err := cfg.NewFilter(uniform)
		if err != nil {
			return nil, err
		}
		c.streams[name] = &stream{name: name, alloc: uniform, eps: uniform, filter: f}
		c.order = append(c.order, name)
	}
	sort.Strings(c.order)
	return c, nil
}

// Push routes one sample to a stream, possibly triggering a reallocation
// round first.
func (c *Coordinator) Push(name string, p core.Point) error {
	if c.finished {
		return ErrFinished
	}
	s, ok := c.streams[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	segs, err := s.filter.Push(p)
	if err != nil {
		return fmt.Errorf("adaptive: stream %q: %w", name, err)
	}
	s.segs = append(s.segs, segs...)
	c.pushes++
	if c.pushes%c.cfg.Period == 0 {
		if err := c.reallocate(); err != nil {
			return err
		}
	}
	return nil
}

// reallocate shrinks every width by δ and regrows the freed budget
// proportionally to each stream's recording rate over the last period.
func (c *Coordinator) reallocate() error {
	c.rounds++
	total := 0.0
	burdens := make(map[string]float64, len(c.streams))
	for _, name := range c.order {
		s := c.streams[name]
		cur := s.spentRecordings + s.filter.Stats().Recordings
		b := float64(cur-s.periodBase) + 1 // +1 smoothing: idle streams keep a floor
		burdens[name] = b
		total += b
	}
	freed := c.cfg.Delta * c.cfg.Budget
	for _, name := range c.order {
		s := c.streams[name]
		s.alloc = (1-c.cfg.Delta)*s.alloc + freed*burdens[name]/total
		// Renegotiating costs a flush (the transmitter must end its
		// current interval), so widths follow allocations lazily: a
		// stream must renegotiate when it runs wider than its new
		// allocation (the Σ ε_i ≤ E invariant), and opts to when the
		// allocation has grown materially; small growths are banked.
		switch {
		case s.eps > s.alloc:
			if err := c.renegotiate(s, s.alloc); err != nil {
				return err
			}
		case s.alloc >= s.eps*1.10:
			if err := c.renegotiate(s, s.alloc); err != nil {
				return err
			}
		}
	}
	// Burden windows restart for every stream, renegotiated or not.
	for _, s := range c.streams {
		s.periodBase = s.spentRecordings + s.filter.Stats().Recordings
	}
	return nil
}

// renegotiate finishes the stream's current filter and starts a new one
// with the updated width.
func (c *Coordinator) renegotiate(s *stream, newEps float64) error {
	tail, err := s.filter.Finish()
	if err != nil {
		return fmt.Errorf("adaptive: stream %q: %w", s.name, err)
	}
	s.segs = append(s.segs, tail...)
	s.spentRecordings += s.filter.Stats().Recordings
	s.periodBase = s.spentRecordings
	f, err := c.cfg.NewFilter(newEps)
	if err != nil {
		return err
	}
	s.filter = f
	s.eps = newEps
	return nil
}

// Widths returns the current per-stream precision widths; they sum to at
// most Budget.
func (c *Coordinator) Widths() map[string]float64 {
	out := make(map[string]float64, len(c.streams))
	for name, s := range c.streams {
		out[name] = s.eps
	}
	return out
}

// Rounds returns the number of reallocation rounds performed.
func (c *Coordinator) Rounds() int { return c.rounds }

// TotalRecordings returns the recordings consumed so far across all
// streams, including renegotiation flushes.
func (c *Coordinator) TotalRecordings() int {
	n := 0
	for _, s := range c.streams {
		n += s.spentRecordings + s.filter.Stats().Recordings
	}
	return n
}

// Finish flushes every stream and returns the per-stream approximations.
func (c *Coordinator) Finish() (map[string][]core.Segment, error) {
	if c.finished {
		return nil, ErrFinished
	}
	c.finished = true
	out := make(map[string][]core.Segment, len(c.streams))
	for _, name := range c.order {
		s := c.streams[name]
		tail, err := s.filter.Finish()
		if err != nil {
			return nil, fmt.Errorf("adaptive: stream %q: %w", name, err)
		}
		s.segs = append(s.segs, tail...)
		s.spentRecordings += s.filter.Stats().Recordings
		out[name] = s.segs
	}
	return out, nil
}

// SumModel combines per-stream reconstructions into the aggregate the
// coordinator guarantees: at any time covered by every stream, the sum of
// the reconstructions is within Budget of the sum of the true samples.
type SumModel struct {
	models []*recon.Model
	budget float64
}

// NewSumModel builds the aggregate view from Finish's output.
func NewSumModel(budget float64, perStream map[string][]core.Segment) (*SumModel, error) {
	if len(perStream) == 0 {
		return nil, fmt.Errorf("%w: no streams", ErrConfig)
	}
	sm := &SumModel{budget: budget}
	names := make([]string, 0, len(perStream))
	for name := range perStream {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m, err := recon.NewModel(perStream[name])
		if err != nil {
			return nil, fmt.Errorf("adaptive: stream %q: %w", name, err)
		}
		if m.Dim() != 1 {
			return nil, fmt.Errorf("%w: SumModel requires 1-dimensional streams", ErrConfig)
		}
		sm.models = append(sm.models, m)
	}
	return sm, nil
}

// Bound returns the aggregate's guaranteed L∞ error bound.
func (s *SumModel) Bound() float64 { return s.budget }

// At returns the reconstructed sum at time t, reporting false when any
// stream does not cover t.
func (s *SumModel) At(t float64) (float64, bool) {
	sum := 0.0
	buf := make([]float64, 1)
	for _, m := range s.models {
		if !m.EvalInto(t, buf) {
			return 0, false
		}
		sum += buf[0]
	}
	return sum, true
}
