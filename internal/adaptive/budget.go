package adaptive

import "fmt"

// Budgeter is the server-side counterpart of the Coordinator: instead of
// splitting a precision budget across filters it owns, it supervises the
// *byte rate* of ingest sessions it can only advise, and answers "how
// much should each session's ε widen right now?". The same
// Olston-style burden-proportional redistribution applies, inverted:
// when the observed total rate exceeds the budget, sessions are assigned
// widening scales (≥ 1, applied to their handshake contract) that grow
// proportionally to each session's share of the traffic — the heavy
// streams, whose recording rate a wider ε actually cuts, absorb most of
// the degradation — and when the total falls back under budget every
// scale decays geometrically toward 1, restoring the contract precision.
//
// Scales are clamped to [1, MaxScale]: a budgeter never tightens a
// session below its negotiated contract, and never widens without bound
// on a stream the budget can't be met for. Not safe for concurrent use;
// one retune loop owns a budgeter.
type Budgeter struct {
	budget float64
	delta  float64
	max    float64
	scales map[string]float64
}

// budgeterDefaults mirror the Coordinator: a quarter of the gap is
// closed per tick, and widening is capped at 16× the contract.
const (
	budgeterDelta    = 0.25
	budgeterMaxScale = 16
)

// NewBudgeter returns a budgeter enforcing the given total byte rate
// (bytes per second, > 0) across its sessions.
func NewBudgeter(bytesPerSec float64) (*Budgeter, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("%w: byte budget must be positive", ErrConfig)
	}
	return &Budgeter{
		budget: bytesPerSec,
		delta:  budgeterDelta,
		max:    budgeterMaxScale,
		scales: make(map[string]float64),
	}, nil
}

// Tick observes one period's byte rates (bytes per second, keyed by
// session) and returns the updated per-session ε scales. A key absent
// from rates is forgotten; a key absent from the result was never over
// budget (scale 1).
func (b *Budgeter) Tick(rates map[string]float64) map[string]float64 {
	// Drop state for sessions that are gone.
	for k := range b.scales {
		if _, live := rates[k]; !live {
			delete(b.scales, k)
		}
	}
	total := 0.0
	for _, r := range rates {
		total += r
	}
	if total <= b.budget || len(rates) == 0 {
		// Under budget: every scale relaxes a δ-fraction of the way back
		// toward the contract, so precision returns as smoothly as it
		// degraded.
		for k, s := range b.scales {
			s = 1 + (s-1)*(1-b.delta)
			if s <= 1+1e-9 {
				delete(b.scales, k)
			} else {
				b.scales[k] = s
			}
		}
		return b.snapshot()
	}
	// Over budget: close a δ-fraction of the overshoot this tick,
	// spread burden-proportionally. burden 1.0 is the average session;
	// a session carrying twice the average traffic widens twice as fast.
	over := total/b.budget - 1
	n := float64(len(rates))
	for k, r := range rates {
		burden := 1.0
		if total > 0 {
			burden = r / total * n
		}
		s := b.scale(k) * (1 + b.delta*over*burden)
		if s > b.max {
			s = b.max
		}
		b.scales[k] = s
	}
	return b.snapshot()
}

// Scale returns the current widening scale for one session (1 when the
// session is unknown or at contract precision).
func (b *Budgeter) Scale(key string) float64 { return b.scale(key) }

func (b *Budgeter) scale(key string) float64 {
	if s, ok := b.scales[key]; ok {
		return s
	}
	return 1
}

func (b *Budgeter) snapshot() map[string]float64 {
	out := make(map[string]float64, len(b.scales))
	for k, s := range b.scales {
		out[k] = s
	}
	return out
}
