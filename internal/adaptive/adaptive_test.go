package adaptive

import (
	"errors"
	"math"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

// heterogeneousStreams builds n time-aligned streams of very different
// volatility: stream 0 is constant, later streams get progressively
// noisier random walks.
func heterogeneousStreams(n, points int) map[string][]core.Point {
	out := make(map[string][]core.Point, n)
	for i := 0; i < n; i++ {
		name := streamName(i)
		if i == 0 {
			pts := make([]core.Point, points)
			for j := range pts {
				pts[j] = core.Point{T: float64(j), X: []float64{5}}
			}
			out[name] = pts
			continue
		}
		out[name] = gen.RandomWalk(gen.WalkConfig{
			N: points, P: 0.5, MaxDelta: float64(i) * 1.5, Seed: uint64(100 + i),
		})
	}
	return out
}

func streamName(i int) string { return string(rune('a' + i)) }

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Budget: 0, Streams: []string{"a"}},
		{Budget: 1},
		{Budget: 1, Streams: []string{"a"}, Delta: 2},
		{Budget: 1, Streams: []string{"a", "b"}, Period: 1},
		{Budget: 1, Streams: []string{"a", "a"}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d accepted: %v", i, err)
		}
	}
	if _, err := New(Config{Budget: 1, Streams: []string{"a"}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestUniformStart(t *testing.T) {
	c, err := New(Config{Budget: 4, Streams: []string{"a", "b", "c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range c.Widths() {
		if w != 1 {
			t.Fatalf("stream %s starts at %v, want 1", name, w)
		}
	}
}

// TestBudgetInvariant: at every moment, the per-stream widths sum to the
// budget (within float slack), no matter how many reallocations ran.
func TestBudgetInvariant(t *testing.T) {
	const budget = 3.0
	streams := heterogeneousStreams(4, 600)
	c, err := New(Config{
		Budget:  budget,
		Streams: []string{"a", "b", "c", "d"},
		Period:  40,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 600; j++ {
		for i := 0; i < 4; i++ {
			name := streamName(i)
			if err := c.Push(name, streams[name][j]); err != nil {
				t.Fatal(err)
			}
		}
		sum := 0.0
		for _, w := range c.Widths() {
			if w <= 0 {
				t.Fatalf("width went non-positive: %v", c.Widths())
			}
			sum += w
		}
		// Actual widths may run below their allocation (growths are
		// applied lazily) but must never exceed the budget.
		if sum > budget*(1+1e-9) {
			t.Fatalf("widths sum to %v, above budget %v", sum, budget)
		}
		if sum < budget/2 {
			t.Fatalf("widths collapsed to %v of budget %v", sum, budget)
		}
	}
	if c.Rounds() == 0 {
		t.Fatal("no reallocation rounds ran")
	}
}

// TestAdaptiveShiftsBudgetToVolatileStreams: the constant stream's width
// must shrink while the noisiest stream's grows.
func TestAdaptiveShiftsBudgetToVolatileStreams(t *testing.T) {
	streams := heterogeneousStreams(3, 1200)
	c, err := New(Config{
		Budget:  3,
		Streams: []string{"a", "b", "c"},
		Period:  60,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 1200; j++ {
		for i := 0; i < 3; i++ {
			name := streamName(i)
			if err := c.Push(name, streams[name][j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	w := c.Widths()
	if !(w["a"] < 1 && w["c"] > 1) {
		t.Fatalf("budget did not migrate: flat=%v noisy=%v (start 1 each)", w["a"], w["c"])
	}
	if w["c"] < w["b"] {
		t.Fatalf("noisier stream got less budget: b=%v c=%v", w["b"], w["c"])
	}
}

// TestAdaptiveBeatsUniform compares total recordings against a static
// uniform allocation on the same heterogeneous workload.
func TestAdaptiveBeatsUniform(t *testing.T) {
	const (
		nStreams = 4
		points   = 2000
		budget   = 4.0
	)
	streams := heterogeneousStreams(nStreams, points)
	names := make([]string, nStreams)
	for i := range names {
		names[i] = streamName(i)
	}

	c, err := New(Config{Budget: budget, Streams: names, Period: 100})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < points; j++ {
		for _, name := range names {
			if err := c.Push(name, streams[name][j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	adaptiveRecs := c.TotalRecordings()

	uniformRecs := 0
	for _, name := range names {
		f, err := core.NewSwing([]float64{budget / nStreams})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Run(f, streams[name]); err != nil {
			t.Fatal(err)
		}
		uniformRecs += f.Stats().Recordings
	}
	if adaptiveRecs >= uniformRecs {
		t.Fatalf("adaptive (%d recordings) did not beat uniform (%d) despite heterogeneity",
			adaptiveRecs, uniformRecs)
	}
	t.Logf("recordings: adaptive=%d uniform=%d (%.1f%% saved)",
		adaptiveRecs, uniformRecs, 100*(1-float64(adaptiveRecs)/float64(uniformRecs)))
}

// TestSumGuarantee: the reconstructed SUM stays within the budget of the
// true sum at every sample time, across reallocations.
func TestSumGuarantee(t *testing.T) {
	const (
		nStreams = 3
		points   = 900
		budget   = 2.4
	)
	streams := heterogeneousStreams(nStreams, points)
	names := []string{"a", "b", "c"}
	c, err := New(Config{Budget: budget, Streams: names, Period: 75})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < points; j++ {
		for _, name := range names {
			if err := c.Push(name, streams[name][j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	per, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := NewSumModel(budget, per)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Bound() != budget {
		t.Fatalf("bound = %v", sum.Bound())
	}
	for j := 0; j < points; j++ {
		tj := float64(j)
		got, ok := sum.At(tj)
		if !ok {
			t.Fatalf("t=%v not covered by the sum model", tj)
		}
		want := 0.0
		for _, name := range names {
			want += streams[name][j].X[0]
		}
		if math.Abs(got-want) > budget*(1+1e-9) {
			t.Fatalf("t=%v: |%v − %v| = %v exceeds budget %v",
				tj, got, want, math.Abs(got-want), budget)
		}
	}
}

func TestPushErrors(t *testing.T) {
	c, _ := New(Config{Budget: 1, Streams: []string{"a"}})
	if err := c.Push("zzz", core.Point{T: 0, X: []float64{0}}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown stream: %v", err)
	}
	if err := c.Push("a", core.Point{T: 0, X: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("a", core.Point{T: 0, X: []float64{0}}); !errors.Is(err, core.ErrTimeOrder) {
		t.Fatalf("time order: %v", err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := c.Push("a", core.Point{T: 9, X: []float64{0}}); !errors.Is(err, ErrFinished) {
		t.Fatalf("push after finish: %v", err)
	}
	if _, err := c.Finish(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double finish: %v", err)
	}
}

func TestSumModelValidation(t *testing.T) {
	if _, err := NewSumModel(1, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty: %v", err)
	}
	bad := map[string][]core.Segment{
		"a": {{T0: 0, T1: 1, X0: []float64{0, 0}, X1: []float64{0, 0}}},
	}
	if _, err := NewSumModel(1, bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("multi-dim: %v", err)
	}
}
