package adaptive

import "testing"

func TestBudgeterRejectsBadBudget(t *testing.T) {
	if _, err := NewBudgeter(0); err == nil {
		t.Fatal("NewBudgeter(0) accepted")
	}
	if _, err := NewBudgeter(-100); err == nil {
		t.Fatal("NewBudgeter(-100) accepted")
	}
}

func TestBudgeterUnderBudgetStaysAtOne(t *testing.T) {
	b, err := NewBudgeter(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		scales := b.Tick(map[string]float64{"a": 200, "b": 300})
		for k, s := range scales {
			if s != 1 {
				t.Fatalf("tick %d: under-budget scale[%s] = %g, want 1", i, k, s)
			}
		}
	}
}

func TestBudgeterOverBudgetGrowsMonotonically(t *testing.T) {
	b, err := NewBudgeter(1000)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{"a": 1500, "b": 500} // 2× over budget
	prev := 1.0
	for i := 0; i < 20; i++ {
		scales := b.Tick(rates)
		if scales["a"] < prev {
			t.Fatalf("tick %d: scale shrank %g → %g while still over budget", i, prev, scales["a"])
		}
		prev = scales["a"]
	}
	if prev <= 1 {
		t.Fatalf("20 over-budget ticks left scale at %g", prev)
	}
	// The heavier stream must carry more of the degradation.
	last := b.Tick(rates)
	if last["a"] <= last["b"] {
		t.Fatalf("heavy stream scale %g ≤ light stream scale %g", last["a"], last["b"])
	}
}

func TestBudgeterScaleBounds(t *testing.T) {
	b, err := NewBudgeter(1)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{"a": 1e9}
	var s float64
	for i := 0; i < 200; i++ {
		s = b.Tick(rates)["a"]
		if s < 1 {
			t.Fatalf("scale %g fell below 1", s)
		}
	}
	if s > 16 {
		t.Fatalf("scale %g exceeded the cap", s)
	}
}

func TestBudgeterDecaysWhenPressureLifts(t *testing.T) {
	b, err := NewBudgeter(1000)
	if err != nil {
		t.Fatal(err)
	}
	over := map[string]float64{"a": 4000}
	for i := 0; i < 10; i++ {
		b.Tick(over)
	}
	inflated := b.Scale("a")
	if inflated <= 1 {
		t.Fatalf("no inflation after sustained overload (scale %g)", inflated)
	}
	under := map[string]float64{"a": 100}
	prev := inflated
	for i := 0; i < 100; i++ {
		s := b.Tick(under)["a"]
		if s > prev+1e-12 {
			t.Fatalf("tick %d: scale grew %g → %g while under budget", i, prev, s)
		}
		prev = s
	}
	if prev > 1.01 {
		t.Fatalf("scale only decayed to %g after 100 calm ticks", prev)
	}
}

func TestBudgeterForgetsDeadStreams(t *testing.T) {
	b, err := NewBudgeter(10)
	if err != nil {
		t.Fatal(err)
	}
	b.Tick(map[string]float64{"gone": 1000, "stays": 1000})
	if b.Scale("gone") <= 1 {
		t.Fatal("overloaded stream not inflated")
	}
	b.Tick(map[string]float64{"stays": 1000})
	if s := b.Scale("gone"); s != 1 {
		t.Fatalf("dead stream still scaled at %g", s)
	}
}
