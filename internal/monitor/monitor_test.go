package monitor

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

func newSwing(t *testing.T, eps float64) core.Filter {
	t.Helper()
	f, err := core.NewSwing([]float64{eps})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRegisterPushSnapshot(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	m := New(func(name string, segs []core.Segment) {
		mu.Lock()
		got[name] += len(segs)
		mu.Unlock()
	})
	if err := m.Register("a", newSwing(t, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", newSwing(t, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("a", newSwing(t, 0.5)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register: %v", err)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}

	for j := 0; j < 100; j++ {
		v := float64(j % 7)
		if err := m.Push("a", core.Point{T: float64(j), X: []float64{v}}); err != nil {
			t.Fatal(err)
		}
		if err := m.Push("b", core.Point{T: float64(j), X: []float64{float64(j)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Push("nope", core.Point{T: 1, X: []float64{0}}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown stream: %v", err)
	}

	stats, total := m.Snapshot()
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Name != "b" {
		t.Fatalf("snapshot = %+v", stats)
	}
	if total.Points != 200 {
		t.Fatalf("total points = %d", total.Points)
	}
	// Stream b is a perfect line: no segments emitted before Close.
	if stats[1].Stats.Segments != 0 {
		t.Fatalf("line stream emitted %d segments early", stats[1].Stats.Segments)
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got["a"] == 0 || got["b"] == 0 {
		t.Fatalf("sink missed final segments: %v", got)
	}
	if m.Len() != 0 {
		t.Fatal("close did not empty the monitor")
	}
}

func TestUnregister(t *testing.T) {
	var n int
	var mu sync.Mutex
	m := New(func(string, []core.Segment) { mu.Lock(); n++; mu.Unlock() })
	if err := m.Register("s", newSwing(t, 1)); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		if err := m.Push("s", core.Point{T: float64(j), X: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Unregister("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unregister("s"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double unregister: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if n == 0 {
		t.Fatal("unregister did not flush the stream")
	}
}

func TestPushErrorPropagates(t *testing.T) {
	m := New(nil)
	if err := m.Register("s", newSwing(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Push("s", core.Point{T: 5, X: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	err := m.Push("s", core.Point{T: 5, X: []float64{0}})
	if !errors.Is(err, core.ErrTimeOrder) {
		t.Fatalf("want ErrTimeOrder, got %v", err)
	}
}

// TestConcurrentStreams hammers many streams from many goroutines; run
// with -race to exercise the locking.
func TestConcurrentStreams(t *testing.T) {
	m := New(func(string, []core.Segment) {})
	const streams = 16
	const points = 400
	for i := 0; i < streams; i++ {
		f, err := core.NewSlide([]float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(fmt.Sprintf("s%02d", i), f); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("s%02d", i)
			pts := gen.SSTLike(points, uint64(i))
			for _, p := range pts {
				if err := m.Push(name, p); err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	stats, total := m.Snapshot()
	if len(stats) != streams || total.Points != streams*points {
		t.Fatalf("snapshot: %d streams, %d points", len(stats), total.Points)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
