// Package monitor manages many concurrently filtered streams — the
// "continuous always-on monitoring" deployment the paper's introduction
// motivates (sensor networks, cluster monitoring, market feeds). Each
// registered stream owns one filter; pushes to different streams proceed
// in parallel, and a snapshot aggregates the per-stream statistics that
// the evaluation reports (points, recordings, compression ratio).
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/pla-go/pla/internal/core"
)

// Errors returned by the monitor.
var (
	// ErrDuplicate reports a stream name registered twice.
	ErrDuplicate = errors.New("monitor: stream already registered")
	// ErrUnknown reports an operation on an unregistered stream.
	ErrUnknown = errors.New("monitor: unknown stream")
)

// SegmentSink receives finalized segments as streams emit them; it must
// be safe for concurrent use. The segments must not be mutated.
type SegmentSink func(stream string, segs []core.Segment)

// Monitor multiplexes many named streams over their filters.
// Create one with New.
type Monitor struct {
	mu      sync.RWMutex
	streams map[string]*stream
	sink    SegmentSink
}

type stream struct {
	mu       sync.Mutex
	filter   core.Filter
	finished bool
}

// New returns an empty monitor. sink may be nil if emitted segments are
// not needed (statistics remain available).
func New(sink SegmentSink) *Monitor {
	return &Monitor{streams: make(map[string]*stream), sink: sink}
}

// Register adds a stream under a unique name with its own filter.
func (m *Monitor) Register(name string, f core.Filter) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.streams[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	m.streams[name] = &stream{filter: f}
	return nil
}

// Unregister finishes a stream's filter (delivering its final segments to
// the sink) and removes it.
func (m *Monitor) Unregister(name string) error {
	m.mu.Lock()
	s, ok := m.streams[name]
	if ok {
		delete(m.streams, name)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.finishLocked(name, s)
}

// Push routes one point to the named stream. Pushes to different streams
// run concurrently; pushes to one stream are serialised.
func (m *Monitor) Push(name string, p core.Point) error {
	m.mu.RLock()
	s, ok := m.streams[name]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := s.filter.Push(p)
	if err != nil {
		return fmt.Errorf("monitor: stream %q: %w", name, err)
	}
	if len(segs) > 0 && m.sink != nil {
		m.sink(name, segs)
	}
	return nil
}

// Close finishes every stream (delivering final segments to the sink)
// and empties the monitor. The first error is returned; all streams are
// finished regardless.
func (m *Monitor) Close() error {
	m.mu.Lock()
	streams := m.streams
	m.streams = make(map[string]*stream)
	m.mu.Unlock()

	var first error
	for name, s := range streams {
		s.mu.Lock()
		if err := m.finishLocked(name, s); err != nil && first == nil {
			first = err
		}
		s.mu.Unlock()
	}
	return first
}

func (m *Monitor) finishLocked(name string, s *stream) error {
	if s.finished {
		return nil
	}
	s.finished = true
	segs, err := s.filter.Finish()
	if err != nil {
		return fmt.Errorf("monitor: stream %q: %w", name, err)
	}
	if len(segs) > 0 && m.sink != nil {
		m.sink(name, segs)
	}
	return nil
}

// StreamStats pairs a stream name with its filter's counters.
type StreamStats struct {
	Name  string
	Stats core.Stats
}

// Snapshot returns per-stream statistics sorted by name, plus the
// aggregate over all streams.
func (m *Monitor) Snapshot() ([]StreamStats, core.Stats) {
	m.mu.RLock()
	names := make([]string, 0, len(m.streams))
	for name := range m.streams {
		names = append(names, name)
	}
	refs := make([]*stream, len(names))
	for i, name := range names {
		refs[i] = m.streams[name]
	}
	m.mu.RUnlock()

	out := make([]StreamStats, len(names))
	var total core.Stats
	for i, s := range refs {
		s.mu.Lock()
		st := s.filter.Stats()
		s.mu.Unlock()
		out[i] = StreamStats{Name: names[i], Stats: st}
		total.Points += st.Points
		total.Segments += st.Segments
		total.Recordings += st.Recordings
		total.Intervals += st.Intervals
		total.LagFlushes += st.LagFlushes
		if st.MaxIntervalPoints > total.MaxIntervalPoints {
			total.MaxIntervalPoints = st.MaxIntervalPoints
		}
		if st.MaxHullVertices > total.MaxHullVertices {
			total.MaxHullVertices = st.MaxHullVertices
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, total
}

// Len returns the number of registered streams.
func (m *Monitor) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.streams)
}
