// Package loadgen is the shared concurrent-ingest driver behind both the
// Go benchmark (internal/server's BenchmarkServerIngest) and the JSON
// perf trajectory (plabench -server-bench): one implementation of "N
// clients filter a random walk and stream it over loopback" — TCP or
// the datagram transport, per Options.Transport — so the measurements
// cannot drift apart.
package loadgen

import (
	"fmt"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/server"
)

// Epsilon is the per-dimension precision width every driver client
// filters with.
const Epsilon = 0.5

// Walks returns the canonical per-client workload: deterministic
// one-dimensional random walks (seed c+1), points samples each.
func Walks(clients, points int) [][]core.Point {
	signals := make([][]core.Point, clients)
	for c := range signals {
		signals[c] = gen.RandomWalk(gen.WalkConfig{N: points, P: 0.5, MaxDelta: 0.4, Seed: uint64(c + 1)})
	}
	return signals
}

// Options parameterises a driver round. The zero value reproduces the
// canonical workload: unbounded swing filters at Epsilon, one batched
// send per session.
type Options struct {
	// Kind selects the filter family ("swing" when empty; "slide",
	// "cache").
	Kind string
	// Epsilon overrides the per-dimension precision width (the package
	// Epsilon constant when 0).
	Epsilon float64
	// MaxLag bounds each session's receiver lag to m points (0 =
	// unbounded). Lag-bounded sessions advertise the bound in the
	// handshake and ship provisional updates, measuring the
	// compression-vs-freshness trade-off on the wire.
	MaxLag int
	// FlushEvery, when positive, sends the signal in chunks of this many
	// points with a heartbeat Flush between chunks — the quiet-stream
	// cadence of a real sensor, forcing pending-window emission.
	FlushEvery int
	// Transport selects the ingest wire: "tcp" (or empty) for the framed
	// stream protocol, "udp" for the datagram transport. The addr passed
	// to RoundOpts must be the matching endpoint.
	Transport string
}

func (o Options) epsilon() float64 {
	if o.Epsilon > 0 {
		return o.Epsilon
	}
	return Epsilon
}

// Result aggregates one round's acknowledgements.
type Result struct {
	// WireBytes is the total bytes the clients put on the wire
	// (handshakes and frame prefixes included).
	WireBytes int64
	// Applied, Rejected and Dropped sum the sessions' final acks.
	Applied, Rejected, Dropped int64
	// LagFlushes sums the filters' max-lag receiver updates (0 for
	// unbounded rounds).
	LagFlushes int64
}

// Round streams each signal through its own Swing(Epsilon) filter into
// addr concurrently, one session per signal, series named
// "<prefix>-<client>". It returns the summed acks once every session has
// closed.
func Round(addr, prefix string, signals [][]core.Point) (Result, error) {
	return RoundOpts(addr, prefix, signals, Options{})
}

// RoundOpts is Round with an explicit workload configuration.
func RoundOpts(addr, prefix string, signals [][]core.Point, opt Options) (Result, error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		res  Result
		rerr error
	)
	for c := range signals {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			one, err := runClient(addr, fmt.Sprintf("%s-%d", prefix, c), signals[c], opt)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if rerr == nil {
					rerr = fmt.Errorf("client %d: %w", c, err)
				}
				return
			}
			res.WireBytes += one.WireBytes
			res.Applied += one.Applied
			res.Rejected += one.Rejected
			res.Dropped += one.Dropped
			res.LagFlushes += one.LagFlushes
		}(c)
	}
	wg.Wait()
	return res, rerr
}

// runClient drives one full ingest session.
func runClient(addr, name string, signal []core.Point, opt Options) (Result, error) {
	spec := server.FilterSpec{Kind: opt.Kind, Epsilon: []float64{opt.epsilon()}, MaxLag: opt.MaxLag}
	cl, err := server.DialSpecTransport(opt.Transport, addr, name, spec)
	if err != nil {
		return Result{}, err
	}
	if opt.FlushEvery > 0 {
		for len(signal) > 0 {
			n := opt.FlushEvery
			if n > len(signal) {
				n = len(signal)
			}
			if err := cl.SendBatch(signal[:n]); err != nil {
				return Result{}, err
			}
			if err := cl.Flush(); err != nil {
				return Result{}, err
			}
			signal = signal[n:]
		}
	} else if err := cl.SendBatch(signal); err != nil {
		return Result{}, err
	}
	stats := cl.Stats()
	ack, err := cl.Close()
	if err != nil {
		return Result{}, err
	}
	return Result{
		WireBytes: cl.BytesSent(),
		Applied:   ack.Applied, Rejected: ack.Rejected, Dropped: ack.Dropped,
		LagFlushes: int64(stats.LagFlushes),
	}, nil
}
