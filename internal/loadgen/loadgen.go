// Package loadgen is the shared concurrent-ingest driver behind both the
// Go benchmark (internal/server's BenchmarkServerIngest) and the JSON
// perf trajectory (plabench -server-bench): one implementation of "N
// clients filter a random walk and stream it over loopback TCP", so the
// two measurements cannot drift apart.
package loadgen

import (
	"fmt"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/server"
)

// Epsilon is the per-dimension precision width every driver client
// filters with.
const Epsilon = 0.5

// Walks returns the canonical per-client workload: deterministic
// one-dimensional random walks (seed c+1), points samples each.
func Walks(clients, points int) [][]core.Point {
	signals := make([][]core.Point, clients)
	for c := range signals {
		signals[c] = gen.RandomWalk(gen.WalkConfig{N: points, P: 0.5, MaxDelta: 0.4, Seed: uint64(c + 1)})
	}
	return signals
}

// Result aggregates one round's acknowledgements.
type Result struct {
	// WireBytes is the total bytes the clients put on the wire
	// (handshakes and frame prefixes included).
	WireBytes int64
	// Applied, Rejected and Dropped sum the sessions' final acks.
	Applied, Rejected, Dropped int64
}

// Round streams each signal through its own Swing(Epsilon) filter into
// addr concurrently, one session per signal, series named
// "<prefix>-<client>". It returns the summed acks once every session has
// closed.
func Round(addr, prefix string, signals [][]core.Point) (Result, error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		res  Result
		rerr error
	)
	for c := range signals {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ack, bytes, err := runClient(addr, fmt.Sprintf("%s-%d", prefix, c), signals[c])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if rerr == nil {
					rerr = fmt.Errorf("client %d: %w", c, err)
				}
				return
			}
			res.WireBytes += bytes
			res.Applied += ack.Applied
			res.Rejected += ack.Rejected
			res.Dropped += ack.Dropped
		}(c)
	}
	wg.Wait()
	return res, rerr
}

// runClient drives one full ingest session.
func runClient(addr, name string, signal []core.Point) (server.Ack, int64, error) {
	f, err := core.NewSwing([]float64{Epsilon})
	if err != nil {
		return server.Ack{}, 0, err
	}
	cl, err := server.Dial(addr, name, f)
	if err != nil {
		return server.Ack{}, 0, err
	}
	if err := cl.SendBatch(signal); err != nil {
		return server.Ack{}, 0, err
	}
	ack, err := cl.Close()
	if err != nil {
		return server.Ack{}, 0, err
	}
	return ack, cl.BytesSent(), nil
}
