// Package wal is the durable storage engine behind the plad server: an
// append-only, checksummed segment log plus periodic PLAA snapshots.
//
// The paper's premise (Section 1) is that PLA segments — not resampled
// points — are the repository format for monitoring streams, so
// durability is built directly on the segment wire format: every record
// is one (series, contract, segment) entry, checksummed with the
// internal/encode record framing, and a snapshot is the archive's own
// container format. A data directory holds one full snapshot
// generation, an optional chain of incremental snapshots hanging off
// it (each carrying only the series dirtied since the previous file),
// and the write-ahead tail that follows:
//
//	data/
//	  snap-00000007.plaa   full archive state through wal seq 7
//	  part-00000009.plaa   series dirtied in seqs 8–9, at their seq-9 state
//	  wal-00000010.log     segments appended since that snapshot
//
// Recovery loads the chain newest-first (the latest copy of each
// series wins; an unreadable link falls back to the older generation),
// replays every remaining wal file in sequence order (truncating a
// torn tail left by a crash mid-write), and opens a fresh tail. Records carry the index the
// segment expects to land at in its series, so replaying a wal file that
// partially overlaps a snapshot — the state a crash during compaction
// leaves behind — deduplicates exactly instead of double-appending.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/fsutil"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

// ShardIndex hashes a series name onto n partitions (FNV-1a). It is the
// single routing function shared by the server's ingest shards and the
// partitioned log, so shard k's log and snapshot hold exactly the series
// shard k's worker owns — appends never cross a partition boundary.
func ShardIndex(name string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// SyncPolicy selects when the log reaches stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) flushes and fsyncs on a background
	// cadence (Options.Interval). A crash can lose at most the last
	// interval's worth of acknowledged batches.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before every commit acknowledgement: an acked
	// batch is on stable storage before the client hears about it.
	SyncAlways
	// SyncOff flushes to the OS on the background cadence but never
	// fsyncs; the OS decides when bytes reach the disk.
	SyncOff
)

// String names the policy for flags and metrics output.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseSyncPolicy maps a flag word onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Errors returned by the log.
var (
	// ErrClosed reports an append to a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt reports an unreadable wal or snapshot file.
	ErrCorrupt = errors.New("wal: corrupt file")
)

// File naming and header. The sequence number in the name is
// authoritative; the copy in the header guards against renamed files.
const (
	walPattern  = "wal-%08d.log"
	snapPattern = "snap-%08d.plaa"
	walMagic    = "PLAW"
	walVersion  = byte(1)

	// markPattern names a shard's seal markers under the mmap extent
	// backend: `seal-<seq>.mark` records that every wal record through
	// seq has been sealed into the series' extent files, playing the
	// role the snapshot file plays for the in-memory backend (it is the
	// compaction fence the wal files ≤ seq are deleted behind).
	markPattern = "seal-%08d.mark"

	// partPattern names a shard's incremental snapshots under the
	// in-memory backend: `part-<seq>.plaa` holds only the series dirtied
	// since the previous snapshot file, chained off the shard's newest
	// full snapshot. A partial carries the same "wal files ≤ seq are
	// deletable" fence a full snapshot does; recovery reads the chain
	// newest-first so the latest copy of each series wins.
	partPattern = "part-%08d.plaa"
)

// Record payload flags.
const (
	recConstant  byte = 1 << 0
	recConnected byte = 1 << 1
)

// Options parameterises a Log (and, through Open, every shard of a
// partitioned Store).
type Options struct {
	// Policy is the fsync policy (default SyncInterval).
	Policy SyncPolicy
	// Interval is the background flush/fsync cadence for SyncInterval and
	// SyncOff (default 50ms).
	Interval time.Duration
	// Retain, when positive, is the retention window in stream-time
	// units: compaction (and recovery) drops a series' oldest segments
	// once their end time falls more than Retain behind the series' own
	// newest covered time. Zero keeps everything.
	Retain float64
	// Extents, when set, is the mmap extent store backing the archive's
	// series (the db passed to Open must have been built over it with
	// tsdb.NewWithNamedStore). Recovery then pre-populates the archive
	// from the sealed extents and replays only the wal tail, and
	// compaction seals tails into new extents behind a seal marker
	// instead of writing snapshot files. When nil but a previous run
	// left an extent directory behind, Open migrates its contents into
	// ordinary snapshots — and the reverse: with Extents set, leftover
	// snapshot files migrate into sealed extents. Both one-shot, both
	// crash-idempotent.
	Extents *mmapstore.Dir
	// Logf, when set, receives one line per recovery or compaction event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Log is the append-only segment log. Appends from concurrent shard
// workers are serialised internally; one background goroutine runs the
// flush cadence for the interval policies.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	rw     *encode.RecordWriter
	seq    uint64
	tail   int64 // bytes appended to the current file (header included)
	total  int64 // bytes appended over the log's lifetime, across rotations
	closed bool

	// fsyncs counts fsyncs actually issued (commits and the background
	// cadence). Atomic: Commit syncs outside mu so appends keep flowing.
	fsyncs atomic.Int64

	flushErr error // first background flush failure, surfaced on Commit

	stop    chan struct{}
	flusher sync.WaitGroup

	buf []byte // record payload scratch, reused under mu
}

// openLog creates the wal file for seq in dir and starts the flusher.
func openLog(dir string, seq uint64, opts Options) (*Log, error) {
	l := &Log{dir: dir, opts: opts.withDefaults(), stop: make(chan struct{})}
	if err := l.openFile(seq); err != nil {
		return nil, err
	}
	l.flusher.Add(1)
	go l.runFlusher()
	return l, nil
}

// openFile creates and headers the wal file for seq; l.mu must be held
// (or the log not yet shared).
func (l *Log) openFile(seq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf(walPattern, seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	n, err := writeHeader(bw, seq)
	if err != nil {
		f.Close()
		return err
	}
	l.f, l.bw, l.rw = f, bw, encode.NewRecordWriter(bw)
	l.seq, l.tail = seq, int64(n)
	l.total += int64(n)
	return nil
}

// writeHeader emits the wal file header, returning its length.
func writeHeader(bw *bufio.Writer, seq uint64) (int, error) {
	if _, err := bw.WriteString(walMagic); err != nil {
		return 0, err
	}
	if err := bw.WriteByte(walVersion); err != nil {
		return 0, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], seq)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return 0, err
	}
	return len(walMagic) + 1 + n, nil
}

// readHeader validates a wal file header, returning its sequence number
// and length.
func readHeader(br *bufio.Reader) (seq uint64, n int, err error) {
	head := make([]byte, len(walMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, 0, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(head[:len(walMagic)]) != walMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:len(walMagic)])
	}
	if head[len(walMagic)] != walVersion {
		return 0, 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, head[len(walMagic)])
	}
	seq, k, err := encode.ReadUvarintCounted(br)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad sequence: %v", ErrCorrupt, err)
	}
	return seq, len(walMagic) + 1 + k, nil
}

// Append writes one (series, contract, segment) record. idx is the
// position the segment expects to land at in its series (the series
// length just before the apply); replay uses it to skip records a
// snapshot already covers. Append does not flush — durability follows
// the sync policy at the next Commit or flusher tick.
func (l *Log) Append(name string, eps []float64, constant bool, idx int, seg core.Segment) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.buf = appendRecord(l.buf[:0], name, eps, constant, idx, seg)
	n, err := l.rw.WriteRecord(l.buf)
	l.tail += int64(n)
	l.total += int64(n)
	return err
}

// Commit makes everything appended so far as durable as the policy
// promises: under SyncAlways it flushes and fsyncs before returning (the
// ack-after-fsync barrier); under the interval policies it is a no-op
// apart from surfacing any background flush failure. The fsync runs
// outside the log mutex, so appends keep flowing into the buffer while
// the disk syncs — the commit pipeline stalls on the journal, not the
// shard worker. Commit is not reentrant (each shard has exactly one
// committer); a commit racing Rotate or Close is safe because both sync
// everything before closing the file.
func (l *Log) Commit() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.opts.Policy != SyncAlways {
		err := l.flushErr
		l.mu.Unlock()
		return err
	}
	err := l.bw.Flush()
	f := l.f
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			// The file was rotated or closed under us; both paths fsync
			// before closing, so everything this commit covers is already
			// durable.
			return nil
		}
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// Sync flushes and fsyncs regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// LogMetrics is a log's cumulative I/O counters — per-shard observability
// for the commit pipeline (one partition, one log, one set of counters).
type LogMetrics struct {
	// Bytes counts everything appended over the log's lifetime, headers
	// included, across rotations.
	Bytes int64
	// Fsyncs counts fsync calls: every Commit under SyncAlways (one per
	// group-commit batch, not per barrier), every explicit Sync or
	// Rotate, and the background cadence under SyncInterval.
	Fsyncs int64
}

// Metrics snapshots the log's cumulative counters.
func (l *Log) Metrics() LogMetrics {
	l.mu.Lock()
	total := l.total
	l.mu.Unlock()
	return LogMetrics{Bytes: total, Fsyncs: l.fsyncs.Load()}
}

// TailBytes returns the size of the current wal file, the compaction
// trigger.
func (l *Log) TailBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// Seq returns the current wal file's sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Rotate syncs and closes the current wal file and opens the next
// sequence, returning the sequence number of the file it closed. Appends
// racing a rotation land in one file or the other, never in between.
func (l *Log) Rotate() (oldSeq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.syncLocked(); err != nil {
		return l.seq, err
	}
	if err := l.f.Close(); err != nil {
		return l.seq, err
	}
	oldSeq = l.seq
	if err := l.openFile(oldSeq + 1); err != nil {
		// The log is unusable until reopened; mark closed so appends fail
		// loudly instead of writing into a closed file.
		l.closed = true
		return oldSeq, err
	}
	syncDir(l.dir, l.opts)
	return oldSeq, nil
}

// Close stops the flusher, syncs and closes the file. The log is
// unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	err := l.bw.Flush()
	if serr := l.f.Sync(); serr == nil {
		l.fsyncs.Add(1)
	} else if err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	close(l.stop)
	l.flusher.Wait()
	return err
}

// runFlusher is the background flush/fsync cadence for the interval
// policies. Under SyncAlways it still flushes periodically so a session
// that never commits (crash before Close) loses as little as possible.
func (l *Log) runFlusher() {
	defer l.flusher.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return
			}
			err := l.bw.Flush()
			if err == nil && l.opts.Policy == SyncInterval {
				if err = l.f.Sync(); err == nil {
					l.fsyncs.Add(1)
				}
			}
			if err != nil && l.flushErr == nil {
				l.flushErr = err
				l.opts.logf("wal: background flush: %v", err)
			}
			l.mu.Unlock()
		}
	}
}

// appendRecord encodes one record payload:
//
//	flags (bit0 constant, bit1 connected) | uvarint nameLen | name |
//	uvarint dim | dim × float64 ε | uvarint idx | uvarint points |
//	float64 t0 | float64 t1 | dim × float64 x0 | dim × float64 x1
func appendRecord(buf []byte, name string, eps []float64, constant bool, idx int, seg core.Segment) []byte {
	var flags byte
	if constant {
		flags |= recConstant
	}
	if seg.Connected {
		flags |= recConnected
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(eps)))
	for _, e := range eps {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e))
	}
	buf = binary.AppendUvarint(buf, uint64(idx))
	pts := seg.Points
	if pts < 0 {
		pts = 0
	}
	buf = binary.AppendUvarint(buf, uint64(pts))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(seg.T0))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(seg.T1))
	for _, v := range seg.X0 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range seg.X1 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// record is one decoded wal entry.
type record struct {
	name     string
	eps      []float64
	constant bool
	idx      int
	seg      core.Segment
}

// parseRecord decodes a record payload produced by appendRecord.
func parseRecord(p []byte) (record, error) {
	var r record
	if len(p) < 1 {
		return r, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	flags := p[0]
	r.constant = flags&recConstant != 0
	r.seg.Connected = flags&recConnected != 0
	p = p[1:]
	nameLen, p, err := takeUvarint(p)
	if err != nil || nameLen > 1<<16 || uint64(len(p)) < nameLen {
		return r, fmt.Errorf("%w: bad name length", ErrCorrupt)
	}
	r.name = string(p[:nameLen])
	p = p[nameLen:]
	dim, p, err := takeUvarint(p)
	if err != nil || dim == 0 || dim > 1<<20 {
		return r, fmt.Errorf("%w: bad dimensionality", ErrCorrupt)
	}
	if r.eps, p, err = takeFloats(p, int(dim)); err != nil {
		return r, fmt.Errorf("%w: truncated epsilon", ErrCorrupt)
	}
	idx, p, err := takeUvarint(p)
	if err != nil || idx > 1<<40 {
		return r, fmt.Errorf("%w: bad index", ErrCorrupt)
	}
	r.idx = int(idx)
	pts, p, err := takeUvarint(p)
	if err != nil || pts > 1<<40 {
		return r, fmt.Errorf("%w: bad point count", ErrCorrupt)
	}
	r.seg.Points = int(pts)
	var times []float64
	if times, p, err = takeFloats(p, 2); err != nil {
		return r, fmt.Errorf("%w: truncated times", ErrCorrupt)
	}
	r.seg.T0, r.seg.T1 = times[0], times[1]
	if r.seg.X0, p, err = takeFloats(p, int(dim)); err != nil {
		return r, fmt.Errorf("%w: truncated x0", ErrCorrupt)
	}
	if r.seg.X1, p, err = takeFloats(p, int(dim)); err != nil {
		return r, fmt.Errorf("%w: truncated x1", ErrCorrupt)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return r, nil
}

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, p[n:], nil
}

func takeFloats(p []byte, n int) ([]float64, []byte, error) {
	if len(p) < 8*n {
		return nil, p, fmt.Errorf("%w: truncated floats", ErrCorrupt)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, p[8*n:], nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable (see fsutil.SyncDir for why failures only log).
func syncDir(dir string, opts Options) {
	fsutil.SyncDir(dir, func(format string, args ...any) {
		opts.logf("wal: "+format, args...)
	})
}
