package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/fsutil"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

// ExtentDir returns where the mmap extent store lives inside a data
// directory — shared so the server can open the store before building
// the archive over it.
func ExtentDir(dataDir string) string { return filepath.Join(dataDir, "mstore") }

// Store binds an archive to its data directory as a partitioned commit
// pipeline: one Shard per ingest shard, each owning its own
// `shard-<k>/` log file set, so appends and fsyncs on different shards
// run in parallel instead of funnelling through one mutex and one file.
// Open performs recovery — every partition replays concurrently before
// merging into the archive — and transparently migrates two legacy
// layouts in one shot: a single-log data dir written before
// partitioning, and shard directories written with a different shard
// count than the current one. The server then writes ahead through each
// shard's handle, compacts partitions independently (rotate + fence +
// snapshot per shard), and ends with CloseSnapshot on a graceful drain.
type Store struct {
	db     *tsdb.Archive
	dir    string
	opts   Options
	mm     *mmapstore.Dir // nil for the in-memory backend
	shards []*Shard
}

// RecoverStats reports what Open found in the data directory, summed
// over every partition it recovered.
type RecoverStats struct {
	// Dirs is the number of log directories recovered (a legacy
	// single-log root counts as one).
	Dirs int
	// SnapshotSeries is the number of series loaded from snapshots.
	SnapshotSeries int
	// WALFiles is the number of wal files replayed.
	WALFiles int
	// Replayed is the number of records applied to the archive.
	Replayed int
	// Skipped is the number of records a snapshot already covered.
	Skipped int
	// Rejected is the number of records the archive refused on replay
	// (the same out-of-order segments it refused live).
	Rejected int
	// TruncatedBytes is the torn tails dropped across all wal files.
	TruncatedBytes int64
	// Migrated reports that the on-disk layout did not match the current
	// sharding (a pre-partitioning single log, or logs written with a
	// different shard count) and was re-baselined into fresh per-shard
	// snapshots during Open.
	Migrated bool
	// Reconciled is the number of series found in more than one
	// partition during a migration (the state a crash mid-migration
	// leaves); the longest copy wins.
	Reconciled int
	// RetentionDropped is the number of segments the retention window
	// removed during recovery.
	RetentionDropped int
	// ExtentSeries is the number of series pre-populated from sealed
	// mmap extents (the fast cold-start path: no snapshot decode, the
	// wal tail is all that replays).
	ExtentSeries int
}

// Empty reports whether recovery found any prior state.
func (rs RecoverStats) Empty() bool {
	return rs.SnapshotSeries == 0 && rs.WALFiles == 0 && rs.ExtentSeries == 0
}

// add accumulates one partition's recovery outcome.
func (rs *RecoverStats) add(o RecoverStats) {
	rs.Dirs += o.Dirs
	rs.SnapshotSeries += o.SnapshotSeries
	rs.WALFiles += o.WALFiles
	rs.Replayed += o.Replayed
	rs.Skipped += o.Skipped
	rs.Rejected += o.Rejected
	rs.TruncatedBytes += o.TruncatedBytes
}

// recoveryUnit is one directory holding a snapshot generation + wal
// tail: a shard dir, or the data-dir root for the legacy single-log
// layout (shard == -1).
type recoveryUnit struct {
	dir    string
	shard  int
	staged *tsdb.Archive
	stats  RecoverStats
	maxSeq uint64
	seed   chainSeed
	err    error
	wals   []seqFile // cached by the extent-backed flow for its replay phase
}

// chainSeed is what recovery learned about one partition's snapshot
// chain, used to seed the owning shard's incremental-snapshot state:
// when the chain on disk read cleanly and still anchors on a full
// snapshot, the first post-boot compaction can write a partial holding
// just the series wal replay touched, instead of rewriting the whole
// partition.
type chainSeed struct {
	hasFull bool                // a full snapshot read cleanly
	fullSeq uint64              // that full snapshot's sequence
	chain   int                 // partials chained past it on disk
	clean   bool                // every chain file read cleanly
	dirty   map[string]struct{} // series wal replay parsed records for
}

// openLeftoverExtents detects and opens an extent directory a previous
// mmap-backed run left behind when this boot is configured for the
// in-memory backend — its contents must migrate into snapshot files.
func openLeftoverExtents(dir string, opts Options) (*mmapstore.Dir, error) {
	if opts.Extents != nil || !mmapstore.Exists(ExtentDir(dir)) {
		return nil, nil
	}
	return mmapstore.Open(ExtentDir(dir), opts.Logf)
}

// Open recovers the data directory into db (which must be empty) and
// opens a fresh write-ahead tail per shard. Every existing partition —
// including ones outside the current shard count, and a legacy
// single-log root — is recovered concurrently into its own staging
// archive (newest readable snapshot, then wal replay with torn-tail
// truncation), then merged into db in deterministic order. If the
// layout does not match nShards, the state is re-baselined: fresh
// per-shard snapshots are written under the current sharding first, and
// only then are the superseded files deleted, so a crash at any point
// leaves a recoverable directory. The directory is created if absent.
//
// With Options.Extents set (the mmap backend) the sealed extents
// pre-populate db directly — no snapshot decode — and only the wal
// tails replay, into the stores' append buffers. A directory written by
// the other backend (snapshot files here, an extent directory under the
// in-memory backend) is migrated in one shot, write-new-before-
// delete-old, exactly like a shard-count change.
func Open(dir string, nShards int, db *tsdb.Archive, opts Options) (st *Store, stats RecoverStats, err error) {
	if nShards <= 0 {
		nShards = 1
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}

	mm := opts.Extents
	leftover, err := openLeftoverExtents(dir, opts)
	if err != nil {
		return nil, stats, err
	}
	// The leftover handle is normally closed (and its directory removed)
	// by the migration re-baseline; on any failure before that, unmap it
	// here so a retried Open does not accumulate leaked mappings.
	// mmapstore.Dir.Close is idempotent, so the success path's close in
	// rebaseline is safe to repeat.
	defer func() {
		if err != nil && leftover != nil {
			leftover.Close()
		}
	}()
	migrate := leftover != nil
	if src := mm; src != nil || leftover != nil {
		if src == nil {
			src = leftover
		}
		n, err := src.LoadInto(db)
		if err != nil {
			return nil, stats, err
		}
		stats.ExtentSeries = n
	}

	units, err := discoverUnits(dir)
	if err != nil {
		return nil, stats, err
	}

	maxSeq := make([]uint64, nShards)
	if mm == nil && leftover == nil {
		// Parallel recovery: each partition replays into its own staging
		// archive, so an 8-shard boot costs one shard's replay time, not
		// eight.
		var wg sync.WaitGroup
		for _, u := range units {
			wg.Add(1)
			go func(u *recoveryUnit) {
				defer wg.Done()
				u.staged = tsdb.New()
				u.stats, u.maxSeq, u.seed, u.err = recoverDir(u.dir, u.staged, opts)
			}(u)
		}
		wg.Wait()

		// Merge in deterministic order — legacy root first, then shard
		// dirs ascending — so duplicate resolution does not depend on
		// goroutine scheduling.
		for _, u := range units {
			if u.err != nil {
				return nil, stats, u.err
			}
			stats.add(u.stats)
			if u.shard >= 0 && u.shard < nShards {
				maxSeq[u.shard] = u.maxSeq
			} else {
				// A legacy root log, or a shard dir beyond the current
				// count: its contents must move to the partitions that
				// now own them.
				migrate = true
			}
			// Names() hides control-prefixed series, but effective-ε
			// records ride the snapshots of the shard that owns their
			// base — merge them too, or a restart forgets the archived
			// data went coarser than its contract. They hash through
			// their base name for layout purposes, like rollup tiers.
			names := u.staged.Names()
			for _, n := range u.staged.ShedNames() {
				names = append(names, n)
			}
			for _, name := range names {
				owner := name
				if base, ok := tsdb.ParseShedName(name); ok {
					owner = base
				}
				if u.shard != ShardIndex(owner, nShards) {
					migrate = true
				}
				reconciled, err := mergeSeries(db, u.staged, name, nil)
				if err != nil {
					return nil, stats, err
				}
				if reconciled {
					stats.Reconciled++
					migrate = true
				}
			}
		}
	} else {
		// Extent-backed recovery. The archive is already populated from
		// the sealed extents, so the staging flow — which rebuilds whole
		// partitions and merges them wholesale — would fight the
		// pre-populated series. Instead: snapshot files (present only
		// around a backend migration) merge through the same
		// recency-based reconciliation first, then every wal file
		// replays directly into the archive, in deterministic unit
		// order; the per-record index check skips what the extents
		// already cover. Only the tails have anything new, so the
		// sequential pass is cheap — that is the cold-start win.
		for _, u := range units {
			snaps, parts, wals, marks, err := scanDir(u.dir, opts)
			if err != nil {
				return nil, stats, err
			}
			u.wals = wals
			for _, f := range marks {
				if f.seq > u.maxSeq {
					u.maxSeq = f.seq
				}
			}
			for _, f := range append(append(snaps, parts...), wals...) {
				if f.seq > u.maxSeq {
					u.maxSeq = f.seq
				}
			}
			if len(snaps)+len(parts)+len(wals)+len(marks) > 0 {
				stats.Dirs++
			}
			if u.shard >= 0 && u.shard < nShards {
				maxSeq[u.shard] = u.maxSeq
			} else {
				migrate = true
			}
			if len(snaps)+len(parts) == 0 {
				continue
			}
			if mm != nil {
				// Snapshot files under the extent backend are the state a
				// backend switch (or a crash during one) leaves; their
				// content must end up sealed.
				migrate = true
			}
			staged := tsdb.New()
			n, _ := loadChain(snaps, parts, staged, opts)
			stats.SnapshotSeries += n
			// Effective-ε control series hide from Names() but ride the
			// snapshots; merge them through the same reconciliation, with
			// layout ownership resolved through their base name.
			names := staged.Names()
			for _, cn := range staged.ShedNames() {
				names = append(names, cn)
			}
			for _, name := range names {
				owner := name
				if base, ok := tsdb.ParseShedName(name); ok {
					owner = base
				}
				if u.shard != ShardIndex(owner, nShards) {
					migrate = true
				}
				reconciled, err := mergeSeries(db, staged, name, mm)
				if err != nil {
					return nil, stats, err
				}
				if reconciled {
					stats.Reconciled++
					migrate = true
				}
			}
		}
		// Replay after every snapshot has merged, so appends land on the
		// reconciled series.
		for _, u := range units {
			shard := u.shard
			seen := func(name string) {
				if shard != ShardIndex(name, nShards) {
					migrate = true
				}
			}
			for _, wf := range u.wals {
				if err := replayFile(wf.path, wf.seq, db, &stats, opts, seen); err != nil {
					return nil, stats, err
				}
			}
		}
	}

	st = &Store{db: db, dir: dir, opts: opts, mm: mm, shards: make([]*Shard, nShards)}
	for k := range st.shards {
		st.shards[k] = &Shard{db: db, dir: filepath.Join(dir, shardDirName(k)), k: k, n: nShards, opts: opts, mm: mm, dirty: make(map[string]struct{})}
		if err := os.MkdirAll(st.shards[k].dir, 0o755); err != nil {
			return nil, stats, err
		}
	}

	// Recovery applies the retention window once, so segments that aged
	// out while the server was down (or resurfaced from a
	// crash-interrupted compaction) do not serve again. Pruning shrinks
	// the in-memory series while the old files still reconstruct the
	// unpruned state, which would desynchronise the idx space new
	// appends are logged under — a later replay would then skip
	// fsync-acked records as "already covered" — so any drop forces the
	// same re-baseline a migration does: fresh snapshots of the pruned
	// state supersede every old file before the new tails open.
	for _, sh := range st.shards {
		stats.RetentionDropped += sh.pruneRetention()
	}
	if stats.RetentionDropped > 0 {
		migrate = true
	}

	if migrate {
		stats.Migrated = true
		if err := st.rebaseline(units, maxSeq, leftover); err != nil {
			return nil, stats, err
		}
	} else if mm == nil {
		// Nothing moved and every partition chain read cleanly off disk:
		// the files recovery just loaded are still a valid baseline, so
		// seed each shard's incremental-snapshot state from them. The
		// first post-boot compaction then writes a partial covering just
		// the series wal replay touched, instead of rewriting the whole
		// partition. Any doubt — a migration, an unreadable chain file,
		// retention pruning (which forces migrate above) — falls back to
		// the full-first rule.
		for _, u := range units {
			if u.shard >= 0 && u.shard < nShards {
				st.shards[u.shard].seedRecovered(u.seed)
			}
		}
	}

	for k, sh := range st.shards {
		l, err := openLog(sh.dir, maxSeq[k]+1, opts)
		if err != nil {
			st.closeOpened(k)
			return nil, stats, err
		}
		sh.log = l
		syncDir(sh.dir, opts)
	}
	syncDir(dir, opts)
	return st, stats, nil
}

// closeOpened closes the logs of shards below k after a partial Open.
func (st *Store) closeOpened(k int) {
	for _, sh := range st.shards[:k] {
		sh.close()
	}
}

// discoverUnits lists the recovery units under dir: the root itself if
// it holds legacy single-log files, plus every `shard-<k>` directory.
func discoverUnits(dir string) ([]*recoveryUnit, error) {
	var units []*recoveryUnit
	snaps, parts, wals, marks, err := scanDir(dir, Options{})
	if err != nil {
		return nil, err
	}
	if len(snaps)+len(parts)+len(wals)+len(marks) > 0 {
		units = append(units, &recoveryUnit{dir: dir, shard: -1})
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		k, ok := strings.CutPrefix(e.Name(), "shard-")
		if !ok {
			continue
		}
		idx, err := strconv.Atoi(k)
		if err != nil || idx < 0 || strconv.Itoa(idx) != k {
			continue
		}
		units = append(units, &recoveryUnit{dir: filepath.Join(dir, e.Name()), shard: idx})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].shard < units[j].shard })
	return units, nil
}

// mergeSeries moves one recovered series from a staging archive into db.
// When the series already exists — only possible while merging the
// duplicate partitions a crash mid-migration (or an undeletable stale
// file) leaves — the most recent copy wins: whichever covers the later
// end time, with segment count as the tiebreak. Recency, not length,
// because retention can legally shrink the fresh copy below a stale
// unpruned leftover, and the fresh copy is the one holding any
// fsync-acked appends made since. Returns whether a duplicate was
// reconciled. With mm set (extent-backed db), replacing a series also
// removes its sealed on-disk state, so the recreate starts from an
// empty store instead of remapping the copy that just lost.
func mergeSeries(db *tsdb.Archive, staged *tsdb.Archive, name string, mm *mmapstore.Dir) (bool, error) {
	src, err := staged.Get(name)
	if err != nil {
		return false, err
	}
	dst, created, err := db.GetOrCreate(name, src.Epsilon(), src.Constant())
	if err != nil {
		return false, fmt.Errorf("wal: merge %q: %w", name, err)
	}
	if !created {
		if !newerSeries(src, dst) {
			return true, nil // dst is at least as recent
		}
		// Replace wholesale: rebuilding from the winning copy is simpler
		// to prove correct than splicing suffixes.
		if err := db.Drop(name); err != nil {
			return true, err
		}
		if mm != nil {
			if err := mm.Remove(name); err != nil {
				return true, fmt.Errorf("wal: merge %q: %w", name, err)
			}
		}
		if dst, err = db.Create(name, src.Epsilon(), src.Constant()); err != nil {
			return true, err
		}
		if err := copySeries(dst, src); err != nil {
			return true, err
		}
		return true, nil
	}
	return false, copySeries(dst, src)
}

// newerSeries reports whether a's copy of a series supersedes b's: it
// covers a later end time, or the same end with more segments.
func newerSeries(a, b *tsdb.Series) bool {
	al, aok := a.Last()
	bl, bok := b.Last()
	switch {
	case !aok:
		return false
	case !bok:
		return true
	case al.T1 != bl.T1:
		return al.T1 > bl.T1
	default:
		return a.Len() > b.Len()
	}
}

// sameSegment reports whether two segments are byte-for-byte the same
// recording.
func sameSegment(a, b core.Segment) bool {
	if a.T0 != b.T0 || a.T1 != b.T1 || a.Connected != b.Connected || a.Points != b.Points ||
		len(a.X0) != len(b.X0) || len(a.X1) != len(b.X1) {
		return false
	}
	for d := range a.X0 {
		if a.X0[d] != b.X0[d] || a.X1[d] != b.X1[d] {
			return false
		}
	}
	return true
}

// copySeries appends src's segments and sample count onto the freshly
// created dst.
func copySeries(dst, src *tsdb.Series) error {
	if err := dst.Append(src.Segments()...); err != nil {
		return fmt.Errorf("wal: merge %q: %w", src.Name(), err)
	}
	dst.SetPoints(src.Points())
	return nil
}

// rebaseline rewrites the archive as a fresh baseline under the current
// sharding and backend — per-shard snapshot files for the in-memory
// store, sealed extents plus per-shard seal markers for the mmap store —
// then deletes the superseded layout (including an extent directory a
// previous mmap-backed run left, once its contents are snapshotted).
// Write-new before delete-old: a crash in between leaves duplicates,
// which the next Open detects (Reconciled) and re-baselines again — the
// migration is idempotent, never lossy.
func (st *Store) rebaseline(units []*recoveryUnit, maxSeq []uint64, leftover *mmapstore.Dir) error {
	for k, sh := range st.shards {
		if st.mm != nil {
			if err := sh.sealOwned(); err != nil {
				return err
			}
			if err := writeMarker(sh.dir, maxSeq[k], st.opts); err != nil {
				return err
			}
		} else {
			if err := writeSnapshot(sh.dir, maxSeq[k], st.db, sh.ownedNames(), st.opts); err != nil {
				return err
			}
			sh.noteFull()
		}
	}
	for _, u := range units {
		if u.shard >= 0 && u.shard < len(st.shards) {
			// A kept partition: its fresh baseline at maxSeq supersedes
			// every wal file ≤ maxSeq and every older generation.
			st.shards[u.shard].removeObsolete(maxSeq[u.shard])
			continue
		}
		// The legacy root or a stray shard dir: every recognised file is
		// superseded by the new baseline.
		snaps, parts, wals, marks, err := scanDir(u.dir, st.opts)
		if err != nil {
			st.opts.logf("wal: migration scan %s: %v", u.dir, err)
			continue
		}
		for _, f := range append(append(append(snaps, parts...), wals...), marks...) {
			if err := os.Remove(f.path); err != nil {
				st.opts.logf("wal: migration remove %s: %v", f.path, err)
			}
		}
		if u.shard >= 0 {
			// Best effort: the stray dir is empty unless a stranger file
			// lives there, in which case it harmlessly stays.
			os.Remove(u.dir)
		}
		syncDir(st.dir, st.opts)
	}
	if leftover != nil {
		// The in-memory backend snapshotted everything the extents held;
		// the extent directory is now the superseded copy.
		leftover.Close()
		if err := os.RemoveAll(leftover.Root()); err != nil {
			st.opts.logf("wal: migration remove %s: %v", leftover.Root(), err)
		}
		syncDir(st.dir, st.opts)
	}
	st.opts.logf("wal: migrated %s to %d-shard layout", st.dir, len(st.shards))
	return nil
}

// DB returns the archive the store recovers into and snapshots from.
func (st *Store) DB() *tsdb.Archive { return st.db }

// NumShards returns the partition count.
func (st *Store) NumShards() int { return len(st.shards) }

// Shard returns partition k's handle — the write-ahead interface for the
// ingest shard with the same index.
func (st *Store) Shard(k int) *Shard { return st.shards[k] }

// Append routes one write-ahead record to the shard that owns s. Callers
// holding a per-shard handle (the server's workers) should append
// through it directly.
func (st *Store) Append(s *tsdb.Series, seg core.Segment) error {
	return st.shards[ShardIndex(s.Name(), len(st.shards))].Append(s, seg)
}

// Commit commits every shard, returning the first error.
func (st *Store) Commit() error {
	var first error
	for _, sh := range st.shards {
		if err := sh.Commit(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync flushes and fsyncs every shard's log regardless of policy.
func (st *Store) Sync() error {
	var first error
	for _, sh := range st.shards {
		if err := sh.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TailBytes sums the current wal file sizes across shards.
func (st *Store) TailBytes() int64 {
	var n int64
	for _, sh := range st.shards {
		n += sh.TailBytes()
	}
	return n
}

// CloseSnapshot ends the store on a graceful drain: every shard (in
// parallel) closes its log, writes a final snapshot covering everything,
// and removes its wal files — leaving each shard directory holding
// exactly one snapshot.
func (st *Store) CloseSnapshot() error {
	errs := make([]error, len(st.shards))
	var wg sync.WaitGroup
	for i, sh := range st.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			errs[i] = sh.closeSnapshot()
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close ends the store without snapshotting (error paths; recovery will
// replay the tails).
func (st *Store) Close() error {
	var first error
	for _, sh := range st.shards {
		if err := sh.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// seqFile is one sequence-numbered file in a log directory.
type seqFile struct {
	seq  uint64
	path string
}

// scanDir lists a directory's full snapshots, incremental (partial)
// snapshots, wal files and seal markers in ascending sequence order,
// removing leftover temporaries from an interrupted snapshot or marker
// write.
func scanDir(dir string, opts Options) (snaps, parts, wals, marks []seqFile, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil, nil, nil
		}
		return nil, nil, nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		var seq uint64
		switch {
		case filepath.Ext(name) == ".tmp":
			opts.logf("wal: removing interrupted snapshot %s", name)
			os.Remove(path)
		case matchSeq(name, walPattern, &seq):
			wals = append(wals, seqFile{seq, path})
		case matchSeq(name, snapPattern, &seq):
			snaps = append(snaps, seqFile{seq, path})
		case matchSeq(name, partPattern, &seq):
			parts = append(parts, seqFile{seq, path})
		case matchSeq(name, markPattern, &seq):
			marks = append(marks, seqFile{seq, path})
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i].seq < wals[j].seq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	sort.Slice(parts, func(i, j int) bool { return parts[i].seq < parts[j].seq })
	sort.Slice(marks, func(i, j int) bool { return marks[i].seq < marks[j].seq })
	return snaps, parts, wals, marks, nil
}

// matchSeq parses a sequence-numbered file name against a
// "<prefix>%08d<suffix>" pattern. The digits are parsed directly
// (Sscanf's %08d would stop at eight digits and reject sequences that
// outgrew the zero padding).
func matchSeq(name, pattern string, seq *uint64) bool {
	i := strings.Index(pattern, "%08d")
	if i < 0 {
		return false
	}
	digits, ok := strings.CutPrefix(name, pattern[:i])
	if !ok {
		return false
	}
	digits, ok = strings.CutSuffix(digits, pattern[i+len("%08d"):])
	if !ok || len(digits) < 8 {
		return false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return false
	}
	*seq = v
	return true
}

// recoverDir recovers one log directory into db: newest readable
// snapshot first, then every remaining wal file in sequence order with
// torn-tail truncation. It returns the directory's stats, highest
// sequence number seen (snapshot or wal), and the chain seed for the
// owning shard's incremental-snapshot state.
func recoverDir(dir string, db *tsdb.Archive, opts Options) (RecoverStats, uint64, chainSeed, error) {
	var stats RecoverStats
	var seed chainSeed
	snaps, parts, wals, marks, err := scanDir(dir, opts)
	if err != nil {
		return stats, 0, seed, err
	}
	if len(snaps)+len(parts)+len(wals)+len(marks) == 0 {
		return stats, 0, seed, nil
	}
	stats.Dirs = 1

	maxSeq := uint64(0)
	for _, f := range append(append(append(append([]seqFile(nil), snaps...), parts...), wals...), marks...) {
		if f.seq > maxSeq {
			maxSeq = f.seq
		}
	}
	stats.SnapshotSeries, seed = loadChain(snaps, parts, db, opts)

	// Replay every wal file in sequence order. Files at or below the
	// snapshot's sequence are normally deleted by compaction; if a crash
	// kept them around, the per-record index check skips everything the
	// snapshot already covers. Every parsed record marks its series in
	// the seed's dirty set — a superset of what replay actually applied,
	// which errs on covering too much in the next partial snapshot, never
	// too little.
	seed.dirty = make(map[string]struct{})
	seen := func(name string) { seed.dirty[name] = struct{}{} }
	for _, wf := range wals {
		if err := replayFile(wf.path, wf.seq, db, &stats, opts, seen); err != nil {
			return stats, maxSeq, seed, err
		}
	}
	return stats, maxSeq, seed, nil
}

// loadChain loads a directory's snapshot chain into db (empty on
// entry), newest file first so the latest copy of each series wins:
// incremental snapshots in descending sequence order, then full
// snapshots, stopping at the first full one that reads cleanly — a
// full snapshot covers every series its shard owns, so anything older
// is superseded. Leftover files a crash kept around contribute nothing
// (their series already exist) and an unreadable file is rolled back
// and skipped with a loud warning, falling through to the next older
// generation exactly as full-snapshot recovery always has. Returns the
// number of series loaded, plus a seed describing the chain's health —
// whether a full baseline read cleanly, how many partials stack on it,
// and whether any file in between was unreadable.
func loadChain(snaps, parts []seqFile, db *tsdb.Archive, opts Options) (int, chainSeed) {
	loaded := 0
	seed := chainSeed{clean: true}
	for i := len(parts) - 1; i >= 0; i-- {
		n, err := mergeSnapshot(parts[i].path, db)
		loaded += n
		if err != nil {
			seed.clean = false
			opts.logf("wal: incremental snapshot %s unreadable, skipping: %v", filepath.Base(parts[i].path), err)
		}
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		n, err := mergeSnapshot(snaps[i].path, db)
		loaded += n
		if err != nil {
			seed.clean = false
			opts.logf("wal: snapshot %s unreadable, trying older: %v", filepath.Base(snaps[i].path), err)
			continue
		}
		seed.hasFull, seed.fullSeq = true, snaps[i].seq
		break
	}
	for _, pt := range parts {
		if pt.seq > seed.fullSeq {
			seed.chain++
		}
	}
	return loaded, seed
}

// mergeSnapshot reads one chain file into db, skipping series a newer
// file already provided. A decode failure rolls back exactly this
// file's contribution, so the caller can fall through to an older
// generation without a half-populated series shadowing a complete
// older copy.
func mergeSnapshot(path string, db *tsdb.Archive) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	created, err := tsdb.MergeInto(db, bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		for _, name := range created {
			db.Drop(name)
		}
		return 0, err
	}
	return len(created), nil
}

// writeMarker records that every wal record through seq has been sealed
// into the extent store: temporary file, fsync, atomic rename,
// directory fsync — the same protocol as a snapshot write, because the
// marker carries the same "wal files ≤ seq are deletable" meaning.
func writeMarker(dir string, seq uint64, opts Options) error {
	final := filepath.Join(dir, fmt.Sprintf(markPattern, seq))
	err := fsutil.WriteFileAtomic(final, func(w io.Writer) error {
		_, werr := io.WriteString(w, walMagic)
		return werr
	})
	if err != nil {
		return err
	}
	syncDir(dir, opts)
	return nil
}

// writeSnapshot writes the named series of db as dir's full snapshot
// for seq: temporary file, fsync, atomic rename, directory fsync.
func writeSnapshot(dir string, seq uint64, db *tsdb.Archive, names []string, opts Options) error {
	return writeArchiveFile(dir, snapPattern, seq, db, names, opts)
}

// writePartial writes an incremental snapshot for seq: only the named
// (dirty) series, under the part- file class, extending the chain that
// hangs off the shard's newest full snapshot. Same write protocol as a
// full snapshot — the file carries the same deletion fence.
func writePartial(dir string, seq uint64, db *tsdb.Archive, names []string, opts Options) error {
	return writeArchiveFile(dir, partPattern, seq, db, names, opts)
}

func writeArchiveFile(dir, pattern string, seq uint64, db *tsdb.Archive, names []string, opts Options) error {
	final := filepath.Join(dir, fmt.Sprintf(pattern, seq))
	err := fsutil.WriteFileAtomic(final, func(w io.Writer) error {
		_, werr := db.WriteSeriesTo(w, names)
		return werr
	})
	if err != nil {
		return err
	}
	syncDir(dir, opts)
	return nil
}

// replayFile applies one wal file's records to db, truncating a torn
// tail in place so the next boot replays it cleanly. wantSeq is the
// sequence the file name claims; a header that disagrees means the file
// was renamed or restored out of place, and replaying it in this
// position would interleave segments out of order. seen, when non-nil,
// observes every parsed record's series name (the extent-backed flow
// uses it to notice records routed under a different shard count).
func replayFile(path string, wantSeq uint64, db *tsdb.Archive, stats *RecoverStats, opts Options, seen func(name string)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		// A crash between file creation and the first flush.
		return nil
	}
	br := bufio.NewReaderSize(f, 1<<16)
	hdrSeq, headerLen, err := readHeader(br)
	if err != nil {
		// The header never made it to disk whole; nothing after it can be
		// framed, so the file holds no recoverable records.
		opts.logf("wal: %s: %v; ignoring file", filepath.Base(path), err)
		return nil
	}
	if hdrSeq != wantSeq {
		opts.logf("wal: %s: header claims sequence %d; file renamed or restored out of place, ignoring it",
			filepath.Base(path), hdrSeq)
		return nil
	}
	stats.WALFiles++
	rr := encode.NewRecordReader(br)
	for {
		payload, err := rr.ReadRecord()
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, encode.ErrTorn) {
			keep := int64(headerLen) + rr.Offset()
			dropped := info.Size() - keep
			opts.logf("wal: %s: torn tail, truncating %d bytes: %v", filepath.Base(path), dropped, err)
			stats.TruncatedBytes += dropped
			if terr := os.Truncate(path, keep); terr != nil {
				return fmt.Errorf("wal: truncate %s: %w", path, terr)
			}
			return nil
		}
		if err != nil {
			return err
		}
		rec, err := parseRecord(payload)
		if err != nil {
			// The checksum passed but the payload does not parse — a
			// writer bug or version skew, not a torn write. Keep the file
			// for inspection and stop replaying it.
			opts.logf("wal: %s: unparseable record, stopping replay of this file: %v", filepath.Base(path), err)
			return nil
		}
		if seen != nil {
			seen(rec.name)
		}
		s, _, err := db.GetOrCreate(rec.name, rec.eps, rec.constant)
		if err != nil {
			stats.Rejected++
			opts.logf("wal: replay %q: %v", rec.name, err)
			continue
		}
		if rec.idx < s.Len() {
			stats.Skipped++ // the snapshot already covers this record
			continue
		}
		if rec.idx > s.Len() {
			// The record claims a position beyond the series' end: the
			// idx space shifted under a retention prune (live compaction
			// logs the tail with pre-prune indices until the next
			// snapshot). Every such record is either older than the
			// series' end — the time-order rejection below handles it —
			// or the one that slips past that check: an exact duplicate
			// of the current last segment, skipped here as covered.
			if last, ok := s.Last(); ok && sameSegment(last, rec.seg) {
				stats.Skipped++
				continue
			}
		}
		if err := s.Append(rec.seg); err != nil {
			stats.Rejected++ // the same rejection the live apply produced
			continue
		}
		stats.Replayed++
	}
}
