package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/tsdb"
)

// Store binds an archive to its data directory: the write-ahead tail the
// ingest path appends to, and the snapshot generation recovery starts
// from. Open performs recovery; the server then writes ahead with Append,
// fences and calls Rotate+Snapshot to compact, and ends with
// CloseSnapshot on a graceful drain.
type Store struct {
	db   *tsdb.Archive
	dir  string
	opts Options
	log  *Log

	compact sync.Mutex // serialises Rotate+Snapshot sequences
}

// RecoverStats reports what Open found in the data directory.
type RecoverStats struct {
	// SnapshotSeq is the sequence of the loaded snapshot (0 if none).
	SnapshotSeq uint64
	// SnapshotSeries is the number of series the snapshot held.
	SnapshotSeries int
	// WALFiles is the number of wal files replayed.
	WALFiles int
	// Replayed is the number of records applied to the archive.
	Replayed int
	// Skipped is the number of records the snapshot already covered.
	Skipped int
	// Rejected is the number of records the archive refused on replay
	// (the same out-of-order segments it refused live).
	Rejected int
	// TruncatedBytes is the torn tail dropped from the last wal file.
	TruncatedBytes int64
}

// Empty reports whether recovery found any prior state.
func (rs RecoverStats) Empty() bool {
	return rs.SnapshotSeries == 0 && rs.WALFiles == 0
}

// Open recovers the data directory into db (which must be empty) and
// opens a fresh write-ahead tail: newest readable snapshot first, then
// every remaining wal file in sequence order with torn-tail truncation.
// The directory is created if absent.
func Open(dir string, db *tsdb.Archive, opts Options) (*Store, RecoverStats, error) {
	opts = opts.withDefaults()
	var stats RecoverStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}
	snaps, wals, err := scanDir(dir, opts)
	if err != nil {
		return nil, stats, err
	}

	// Load the newest snapshot that parses cleanly; older generations
	// only survive in the directory after a crash mid-compaction, and a
	// half-written one is skipped the same way (with a loud warning).
	maxSeq := uint64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		sn := snaps[i]
		if sn.seq > maxSeq {
			maxSeq = sn.seq
		}
		if stats.SnapshotSeries > 0 || sn.seq < stats.SnapshotSeq {
			continue
		}
		n, err := loadSnapshot(sn.path, db)
		if err != nil {
			opts.logf("wal: snapshot %s unreadable, trying older: %v", filepath.Base(sn.path), err)
			continue
		}
		stats.SnapshotSeq, stats.SnapshotSeries = sn.seq, n
	}

	// Replay every wal file in sequence order. Files at or below the
	// snapshot's sequence are normally deleted by compaction; if a crash
	// kept them around, the per-record index check skips everything the
	// snapshot already covers.
	for _, wf := range wals {
		if wf.seq > maxSeq {
			maxSeq = wf.seq
		}
		if err := replayFile(wf.path, wf.seq, db, &stats, opts); err != nil {
			return nil, stats, err
		}
	}

	l, err := openLog(dir, maxSeq+1, opts)
	if err != nil {
		return nil, stats, err
	}
	syncDir(dir, opts)
	return &Store{db: db, dir: dir, opts: opts, log: l}, stats, nil
}

// DB returns the archive the store recovers into and snapshots from.
func (st *Store) DB() *tsdb.Archive { return st.db }

// Append writes one segment ahead of its apply to s. It must be called
// by the single goroutine that owns appends for s (the shard worker), so
// the recorded index matches the position the apply will use.
func (st *Store) Append(s *tsdb.Series, seg core.Segment) error {
	return st.log.Append(s.Name(), s.Epsilon(), s.Constant(), s.Len(), seg)
}

// Commit is the ack barrier: under SyncAlways it returns only after the
// log is fsynced.
func (st *Store) Commit() error { return st.log.Commit() }

// Sync flushes and fsyncs the log regardless of policy.
func (st *Store) Sync() error { return st.log.Sync() }

// TailBytes returns the current wal file's size, the compaction trigger.
func (st *Store) TailBytes() int64 { return st.log.TailBytes() }

// Rotate closes the current wal file and opens the next sequence,
// returning the closed file's sequence — the argument for Snapshot once
// every record in it has been applied (the caller fences its appliers in
// between).
func (st *Store) Rotate() (uint64, error) { return st.log.Rotate() }

// Snapshot writes the archive's current state as the snapshot for
// throughSeq and removes the wal files (sequence ≤ throughSeq) and older
// snapshots it supersedes. The caller must guarantee every record in
// those wal files has been applied to the archive — rotate, fence the
// appliers, then snapshot.
func (st *Store) Snapshot(throughSeq uint64) error {
	st.compact.Lock()
	defer st.compact.Unlock()
	if err := writeSnapshot(st.dir, throughSeq, st.db, st.opts); err != nil {
		return err
	}
	st.removeObsolete(throughSeq)
	return nil
}

// CloseSnapshot ends the store on a graceful drain: it closes the log,
// writes a final snapshot covering everything, and removes every wal
// file — leaving the directory holding exactly one snapshot.
func (st *Store) CloseSnapshot() error {
	st.compact.Lock()
	defer st.compact.Unlock()
	seq := st.log.Seq()
	if err := st.log.Close(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	if err := writeSnapshot(st.dir, seq, st.db, st.opts); err != nil {
		return err
	}
	st.removeObsolete(seq)
	return nil
}

// Close ends the store without snapshotting (error paths; recovery will
// replay the tail).
func (st *Store) Close() error {
	err := st.log.Close()
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}

// removeObsolete deletes wal files with sequence ≤ throughSeq and
// snapshots older than throughSeq. Failures are logged: a leftover file
// costs replay time on the next boot, not correctness.
func (st *Store) removeObsolete(throughSeq uint64) {
	snaps, wals, err := scanDir(st.dir, st.opts)
	if err != nil {
		st.opts.logf("wal: compaction scan: %v", err)
		return
	}
	for _, wf := range wals {
		if wf.seq <= throughSeq {
			if err := os.Remove(wf.path); err != nil {
				st.opts.logf("wal: remove %s: %v", filepath.Base(wf.path), err)
			}
		}
	}
	for _, sn := range snaps {
		if sn.seq < throughSeq {
			if err := os.Remove(sn.path); err != nil {
				st.opts.logf("wal: remove %s: %v", filepath.Base(sn.path), err)
			}
		}
	}
	syncDir(st.dir, st.opts)
}

// seqFile is one sequence-numbered file in the data directory.
type seqFile struct {
	seq  uint64
	path string
}

// scanDir lists the directory's snapshots and wal files in ascending
// sequence order, removing leftover temporaries from an interrupted
// snapshot write.
func scanDir(dir string, opts Options) (snaps, wals []seqFile, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		var seq uint64
		switch {
		case filepath.Ext(name) == ".tmp":
			opts.logf("wal: removing interrupted snapshot %s", name)
			os.Remove(path)
		case matchSeq(name, walPattern, &seq):
			wals = append(wals, seqFile{seq, path})
		case matchSeq(name, snapPattern, &seq):
			snaps = append(snaps, seqFile{seq, path})
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i].seq < wals[j].seq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	return snaps, wals, nil
}

// matchSeq parses a sequence-numbered file name against a
// "<prefix>%08d<suffix>" pattern. The digits are parsed directly
// (Sscanf's %08d would stop at eight digits and reject sequences that
// outgrew the zero padding).
func matchSeq(name, pattern string, seq *uint64) bool {
	i := strings.Index(pattern, "%08d")
	if i < 0 {
		return false
	}
	digits, ok := strings.CutPrefix(name, pattern[:i])
	if !ok {
		return false
	}
	digits, ok = strings.CutSuffix(digits, pattern[i+len("%08d"):])
	if !ok || len(digits) < 8 {
		return false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return false
	}
	*seq = v
	return true
}

// loadSnapshot reads a snapshot into db in one pass. db is empty on
// entry (Open's contract), so a decode failure rolls back by dropping
// whatever series the partial read created — recovery can then fall
// back to an older snapshot without a half-populated archive.
func loadSnapshot(path string, db *tsdb.Archive) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := tsdb.ReadInto(db, bufio.NewReaderSize(f, 1<<16)); err != nil {
		for _, name := range db.Names() {
			db.Drop(name)
		}
		return 0, err
	}
	return len(db.Names()), nil
}

// writeSnapshot writes db as the snapshot for seq: temporary file, fsync,
// atomic rename, directory fsync.
func writeSnapshot(dir string, seq uint64, db *tsdb.Archive, opts Options) error {
	final := filepath.Join(dir, fmt.Sprintf(snapPattern, seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := db.WriteTo(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir, opts)
	return nil
}

// replayFile applies one wal file's records to db, truncating a torn
// tail in place so the next boot replays it cleanly. wantSeq is the
// sequence the file name claims; a header that disagrees means the file
// was renamed or restored out of place, and replaying it in this
// position would interleave segments out of order.
func replayFile(path string, wantSeq uint64, db *tsdb.Archive, stats *RecoverStats, opts Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		// A crash between file creation and the first flush.
		return nil
	}
	br := bufio.NewReaderSize(f, 1<<16)
	hdrSeq, headerLen, err := readHeader(br)
	if err != nil {
		// The header never made it to disk whole; nothing after it can be
		// framed, so the file holds no recoverable records.
		opts.logf("wal: %s: %v; ignoring file", filepath.Base(path), err)
		return nil
	}
	if hdrSeq != wantSeq {
		opts.logf("wal: %s: header claims sequence %d; file renamed or restored out of place, ignoring it",
			filepath.Base(path), hdrSeq)
		return nil
	}
	stats.WALFiles++
	rr := encode.NewRecordReader(br)
	for {
		payload, err := rr.ReadRecord()
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, encode.ErrTorn) {
			keep := int64(headerLen) + rr.Offset()
			dropped := info.Size() - keep
			opts.logf("wal: %s: torn tail, truncating %d bytes: %v", filepath.Base(path), dropped, err)
			stats.TruncatedBytes += dropped
			if terr := os.Truncate(path, keep); terr != nil {
				return fmt.Errorf("wal: truncate %s: %w", path, terr)
			}
			return nil
		}
		if err != nil {
			return err
		}
		rec, err := parseRecord(payload)
		if err != nil {
			// The checksum passed but the payload does not parse — a
			// writer bug or version skew, not a torn write. Keep the file
			// for inspection and stop replaying it.
			opts.logf("wal: %s: unparseable record, stopping replay of this file: %v", filepath.Base(path), err)
			return nil
		}
		s, _, err := db.GetOrCreate(rec.name, rec.eps, rec.constant)
		if err != nil {
			stats.Rejected++
			opts.logf("wal: replay %q: %v", rec.name, err)
			continue
		}
		if rec.idx < s.Len() {
			stats.Skipped++ // the snapshot already covers this record
			continue
		}
		if err := s.Append(rec.seg); err != nil {
			stats.Rejected++ // the same rejection the live apply produced
			continue
		}
		stats.Replayed++
	}
}
