package wal

// The mmap-backend crash matrix: kill-and-restart at every phase of the
// store's life — mid-append (wal tail only), mid-seal (extent written
// but not yet covered by meta, torn or whole), mid-compaction (marker
// written, superseded wal files still present), and mid-migration in
// both directions (mem→mmap and mmap→mem) — always asserting the
// recovered archive is segment-for-segment identical to a reference.
// Crash states are manufactured the way the wal tests do it: run the
// real code to produce the artifacts, then reassemble the directory a
// crash at the chosen instant would have left.

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

// openMmapStore opens dir as an mmap-backed store: the extent directory
// first, then an archive built over it, then the wal pipeline with
// Extents wired up — the same composition the server performs.
func openMmapStore(t *testing.T, dir string, nShards int, policy SyncPolicy) (*Store, RecoverStats) {
	t.Helper()
	mm, err := mmapstore.Open(ExtentDir(dir), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close() })
	db := tsdb.NewWithNamedStore(mm.Store)
	st, stats, err := Open(dir, nShards, db, Options{Policy: policy, Extents: mm, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return st, stats
}

// copyTree snapshots a directory state so a test can later reassemble
// the layout a crash would have left.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// seriesExtentDir locates the (single) series directory under the
// extent root.
func seriesExtentDir(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(ExtentDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			return filepath.Join(ExtentDir(dir), e.Name())
		}
	}
	t.Fatal("no series extent dir found")
	return ""
}

// TestMmapReplayFromTail recovers a crash before any seal: everything
// comes back from the wal alone, into the stores' append tails.
func TestMmapReplayFromTail(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openMmapStore(t, dir, 1, SyncAlways)
	appendN(t, st, ref, "tail", 0, 7)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openMmapStore(t, dir, 1, SyncAlways)
	defer st2.Close()
	if stats.ExtentSeries != 0 || stats.Replayed != 7 {
		t.Fatalf("stats %+v, want 0 extent series + 7 replayed", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestMmapSealAndRecover compacts (seal + marker + wal cleanup), keeps
// appending, crashes, and expects the extents plus the wal tail to
// rebuild the archive — with the sealed records never replayed.
func TestMmapSealAndRecover(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openMmapStore(t, dir, 1, SyncAlways)
	appendN(t, st, ref, "a", 0, 6)
	appendN(t, st, ref, "b", 0, 4)

	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	// The compacted partition must hold a marker, no snapshot file, and
	// no wal at or below the marker.
	snaps, _, wals, marks, err := scanDir(shard0Dir(dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 || len(marks) != 1 || marks[0].seq != oldSeq {
		t.Fatalf("after seal: %d snaps, marks %v", len(snaps), marks)
	}
	for _, wf := range wals {
		if wf.seq <= oldSeq {
			t.Fatalf("wal seq %d survived compaction", wf.seq)
		}
	}

	appendN(t, st, ref, "a", 6, 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openMmapStore(t, dir, 1, SyncAlways)
	defer st2.Close()
	if stats.ExtentSeries != 2 || stats.Replayed != 3 || stats.SnapshotSeries != 0 {
		t.Fatalf("stats %+v, want 2 extent series + 3 replayed + 0 snapshot series", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestMmapCleanShutdown drains through CloseSnapshot and expects a
// wal-free cold start: extents only, nothing replayed.
func TestMmapCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openMmapStore(t, dir, 2, SyncInterval)
	appendN(t, st, ref, "x", 0, 5)
	appendN(t, st, ref, "y", 0, 6)
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		_, _, wals, _, err := scanDir(filepath.Join(dir, shardDirName(k)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(wals) != 0 {
			t.Fatalf("shard %d kept %d wal files after CloseSnapshot", k, len(wals))
		}
	}

	st2, stats := openMmapStore(t, dir, 2, SyncInterval)
	defer st2.Close()
	if stats.ExtentSeries != 2 || stats.Replayed != 0 || stats.WALFiles != 0 {
		t.Fatalf("stats %+v, want a pure extent cold start", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestMmapCrashMidSeal reassembles the three states a crash inside
// Shard.Snapshot can leave — extent written but meta not, extent+meta
// written but marker not, everything written but the superseded wal
// still present — and additionally tears the extent file in the first
// state. All of them must recover to the reference.
func TestMmapCrashMidSeal(t *testing.T) {
	// build produces two directory states of the same logical archive:
	// preSeal (one sealed generation + a wal tail of 4 more segments, a
	// clean crash point) and sealed (a second seal generation completed).
	build := func(t *testing.T) (sealed string, preSeal string, ref *tsdb.Archive) {
		sealed, preSeal = t.TempDir(), t.TempDir()
		ref = tsdb.New()
		st, _ := openMmapStore(t, sealed, 1, SyncAlways)
		appendN(t, st, ref, "mid", 0, 4)
		sh := st.Shard(0)
		oldSeq, err := sh.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Snapshot(oldSeq); err != nil {
			t.Fatal(err)
		}
		appendN(t, st, ref, "mid", 4, 4)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		copyTree(t, sealed, preSeal)

		// Produce the second-generation seal artifacts on sealed.
		st2, _ := openMmapStore(t, sealed, 1, SyncAlways)
		sh2 := st2.Shard(0)
		oldSeq, err = sh2.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if err := sh2.Snapshot(oldSeq); err != nil {
			t.Fatal(err)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		return sealed, preSeal, ref
	}

	// overlayExtents copies the sealed series' extent files (and, when
	// withMeta, the updated meta) onto the crash state.
	overlayExtents := func(t *testing.T, sealed, crash string, withMeta, torn bool) {
		sdir := seriesExtentDir(t, sealed)
		target := seriesExtentDir(t, crash)
		copyFileGlob(t, sdir, target, "ext-*.seg")
		if withMeta {
			copyFileGlob(t, sdir, target, "meta")
		}
		if torn {
			exts, err := filepath.Glob(filepath.Join(target, "ext-*.seg"))
			if err != nil || len(exts) == 0 {
				t.Fatalf("no extents to tear: %v", err)
			}
			newest := exts[len(exts)-1] // glob sorts; zero padding keeps order
			info, err := os.Stat(newest)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(newest, info.Size()-11); err != nil {
				t.Fatal(err)
			}
		}
	}

	cases := []struct {
		name     string
		assemble func(t *testing.T, sealed, crash string)
	}{
		// Crash between the extent write and the meta update: the new
		// extent is outside the meta window, so it must be discarded in
		// favour of the wal tail that still covers it.
		{"extent-no-meta", func(t *testing.T, sealed, crash string) {
			overlayExtents(t, sealed, crash, false, false)
		}},
		// Same instant, but the extent itself is torn mid-write.
		{"torn-extent-no-meta", func(t *testing.T, sealed, crash string) {
			overlayExtents(t, sealed, crash, false, true)
		}},
		// Crash between the meta update and the marker: the extents are
		// authoritative, the old wal replays and dedups by index.
		{"meta-no-marker", func(t *testing.T, sealed, crash string) {
			overlayExtents(t, sealed, crash, true, false)
		}},
		// Crash between the marker and the wal cleanup.
		{"marker-wal-not-deleted", func(t *testing.T, sealed, crash string) {
			copyTree(t, sealed, crash)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sealed, preSeal, ref := build(t)
			crash := t.TempDir()
			copyTree(t, preSeal, crash)
			tc.assemble(t, sealed, crash)

			st, _ := openMmapStore(t, crash, 1, SyncAlways)
			defer st.Close()
			mustEqualArchives(t, st.DB(), ref)
		})
	}
}

// copyFileGlob copies the files matching pattern from src into dst.
func copyFileGlob(t *testing.T, src, dst, pattern string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(src, pattern))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(p)), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMmapMigrationFromMem boots an mmap-configured server on a
// directory written by the in-memory backend: the snapshots must seal
// into extents, the snapshot files must disappear, and a crash that
// keeps the old snapshot around must reconcile idempotently.
func TestMmapMigrationFromMem(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	memSt, _ := openStore(t, dir, SyncAlways)
	appendN(t, memSt, ref, "mig", 0, 6)
	sh := memSt.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	appendN(t, memSt, ref, "mig", 6, 2)
	if err := memSt.Close(); err != nil {
		t.Fatal(err)
	}
	// Keep the snapshot so a later step can resurrect it.
	snaps, _, _, _, err := scanDir(shard0Dir(dir), Options{})
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d (%v)", len(snaps), err)
	}
	snapBytes, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}

	st, stats := openMmapStore(t, dir, 1, SyncAlways)
	if !stats.Migrated || stats.SnapshotSeries != 1 || stats.Replayed != 2 {
		t.Fatalf("stats %+v, want a migrated snapshot + 2 replayed", stats)
	}
	mustEqualArchives(t, st.DB(), ref)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if after, _, _, _, _ := scanDir(shard0Dir(dir), Options{}); len(after) != 0 {
		t.Fatalf("snapshot files survived the migration: %v", after)
	}

	// Crash mid-migration: the old snapshot resurfaces next to the
	// sealed extents. Recovery must keep the (at least as recent)
	// extent copy and not double anything.
	if err := os.WriteFile(snaps[0].path, snapBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, stats2 := openMmapStore(t, dir, 1, SyncAlways)
	defer st2.Close()
	if !stats2.Migrated {
		t.Fatalf("stats %+v, want re-migration over the resurfaced snapshot", stats2)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestMmapMigrationToMem boots an in-memory-configured server on a
// directory written by the mmap backend: the extents must become
// snapshots, the extent dir must disappear, and resurrecting it must
// reconcile idempotently.
func TestMmapMigrationToMem(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openMmapStore(t, dir, 2, SyncAlways)
	appendN(t, st, ref, "back", 0, 6)
	appendN(t, st, ref, "forth", 0, 3)
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}
	backup := t.TempDir()
	copyTree(t, ExtentDir(dir), filepath.Join(backup, "mstore"))

	memSt, stats := openStoreN(t, dir, 2, SyncAlways)
	if !stats.Migrated || stats.ExtentSeries != 2 {
		t.Fatalf("stats %+v, want migration of 2 extent series", stats)
	}
	mustEqualArchives(t, memSt.DB(), ref)
	if err := memSt.Close(); err != nil {
		t.Fatal(err)
	}
	if mmapstore.Exists(ExtentDir(dir)) {
		t.Fatal("extent dir survived migration to the in-memory backend")
	}
	for k := 0; k < 2; k++ {
		snaps, _, _, marks, err := scanDir(filepath.Join(dir, shardDirName(k)), Options{})
		if err != nil || len(snaps) != 1 || len(marks) != 0 {
			t.Fatalf("shard %d after migration: %d snaps, %d marks (%v)", k, len(snaps), len(marks), err)
		}
	}

	// Crash mid-migration: the extent dir resurfaces next to the new
	// snapshots. The fresh boot migrates again without duplicating.
	copyTree(t, filepath.Join(backup, "mstore"), ExtentDir(dir))
	memSt2, stats2 := openStoreN(t, dir, 2, SyncAlways)
	defer memSt2.Close()
	if !stats2.Migrated {
		t.Fatalf("stats %+v, want re-migration over the resurrected extent dir", stats2)
	}
	mustEqualArchives(t, memSt2.DB(), ref)
}

// TestMmapShardCountChange restarts an mmap-backed store under a
// different shard count. Sealed extents are shard-agnostic, so a
// reshard whose wal tails are empty or correctly routed needs no
// migration at all; as soon as a tail holds records for a series the
// new layout routes elsewhere, the boot re-baselines (seals everything
// and retires the misrouted tails) so a later per-shard compaction
// cannot delete another shard's unsealed records.
func TestMmapShardCountChange(t *testing.T) {
	names := make([]string, 6)
	for i := range names {
		names[i] = "series-" + strings.Repeat("q", i+1)
	}

	t.Run("all-sealed-no-migration", func(t *testing.T) {
		dir := t.TempDir()
		ref := tsdb.New()
		st, _ := openMmapStore(t, dir, 2, SyncAlways)
		for i, name := range names {
			appendN(t, st, ref, name, 0, 3+i)
		}
		if err := st.CloseSnapshot(); err != nil {
			t.Fatal(err)
		}

		st2, stats := openMmapStore(t, dir, 5, SyncAlways)
		defer st2.Close()
		if stats.Migrated {
			t.Fatalf("stats %+v: sealed extents are shard-agnostic, reshard should not migrate", stats)
		}
		mustEqualArchives(t, st2.DB(), ref)
	})

	t.Run("unsealed-tails-migrate", func(t *testing.T) {
		dir := t.TempDir()
		ref := tsdb.New()
		st, _ := openMmapStore(t, dir, 2, SyncAlways)
		for i, name := range names {
			appendN(t, st, ref, name, 0, 3+i)
		}
		if err := st.Close(); err != nil { // crash-style: tails stay in the wal
			t.Fatal(err)
		}

		st2, stats := openMmapStore(t, dir, 5, SyncAlways)
		if !stats.Migrated {
			t.Fatalf("stats %+v, want migration for misrouted wal tails", stats)
		}
		mustEqualArchives(t, st2.DB(), ref)
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}

		// After the re-baseline every tail is sealed: a third boot under
		// yet another count is clean again.
		st3, stats3 := openMmapStore(t, dir, 3, SyncAlways)
		defer st3.Close()
		if stats3.Replayed != 0 {
			t.Fatalf("stats %+v, want everything sealed after the migration", stats3)
		}
		mustEqualArchives(t, st3.DB(), ref)
	})
}

// TestMmapRetentionAcrossRestart prunes at compaction under a retention
// window and verifies the fenced extents stay pruned across a restart,
// matching a reference archive pruned the same way.
func TestMmapRetentionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	mm, err := mmapstore.Open(ExtentDir(dir), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close() })
	db := tsdb.NewWithNamedStore(mm.Store)
	opts := Options{Policy: SyncAlways, Retain: 8, Extents: mm, Logf: t.Logf}
	st, _, err := Open(dir, 1, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, st, ref, "ret", 0, 6)
	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil { // seals, then prunes on the next pass
		t.Fatal(err)
	}
	appendN(t, st, ref, "ret", 6, 6)
	oldSeq, err = sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Mirror the retention drop on the reference.
	rs, _ := ref.Get("ret")
	if _, end, ok := rs.Span(); ok {
		rs.DropBefore(end - 8)
	}

	mm2, err := mmapstore.Open(ExtentDir(dir), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm2.Close() })
	db2 := tsdb.NewWithNamedStore(mm2.Store)
	opts2 := opts
	opts2.Extents = mm2
	st2, _, err := Open(dir, 1, db2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mustEqualArchives(t, st2.DB(), ref)
}
