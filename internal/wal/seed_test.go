package wal

import (
	"os"
	"testing"

	"github.com/pla-go/pla/internal/tsdb"
)

// TestSeedDirtyFromReplay pins the boot→replay→compact chain link: a
// restart that recovers a clean full snapshot plus a wal tail must seed
// the shard's dirty set from the replayed records, so the first
// post-boot compaction writes a partial chained onto the pre-existing
// full snapshot instead of rewriting the whole partition.
func TestSeedDirtyFromReplay(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)

	// Five series, then a full baseline on disk.
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		appendN(t, st, ref, name, 0, 6)
	}
	rotateSnapshot(t, st)
	snaps, parts, _ := dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 0 {
		t.Fatalf("baseline: %d full, %d partial; want 1, 0", len(snaps), len(parts))
	}
	fullPath := snaps[0].path
	fullBefore, err := os.Stat(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty only "a", commit, and crash-close: the close path without a
	// snapshot leaves the full baseline plus a wal tail holding "a".
	appendN(t, st, ref, "a", 6, 4)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot. Recovery replays the tail; the seeded dirty set must make
	// the very next compaction incremental.
	st2, stats := openStore(t, dir, SyncAlways)
	if stats.Migrated {
		t.Fatalf("clean restart migrated: %+v", stats)
	}
	if stats.Replayed != 4 {
		t.Fatalf("replayed %d records, want the 4 in the tail", stats.Replayed)
	}
	rotateSnapshot(t, st2)
	snaps, parts, _ = dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 1 {
		t.Fatalf("first post-boot compaction: %d full, %d partial; want the pre-existing full plus one new partial", len(snaps), len(parts))
	}
	if snaps[0].path != fullPath {
		t.Fatalf("full snapshot changed: %s -> %s; the pre-boot full must stay the anchor", fullPath, snaps[0].path)
	}
	fullAfter, err := os.Stat(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if !fullAfter.ModTime().Equal(fullBefore.ModTime()) || fullAfter.Size() != fullBefore.Size() {
		t.Fatal("full snapshot was rewritten; compaction should have chained a partial instead")
	}
	if parts[0].seq <= snaps[0].seq {
		t.Fatalf("partial seq %d not past full seq %d", parts[0].seq, snaps[0].seq)
	}
	got := tsdb.New()
	if n, err := mergeSnapshot(parts[0].path, got); err != nil || n != 1 {
		t.Fatalf("partial holds %d series (err %v), want exactly the replayed one", n, err)
	}
	if names := got.Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("partial holds %v, want [a] (the series wal replay touched)", names)
	}

	// A second crash cycle must recover through the boot-spanning chain:
	// old full + new partial + fresh tail.
	appendN(t, st2, ref, "b", 6, 3)
	if err := st2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, stats := openStore(t, dir, SyncAlways)
	defer st3.Close()
	if stats.Migrated {
		t.Fatalf("chain recovery migrated: %+v", stats)
	}
	if stats.SnapshotSeries != 5 {
		t.Fatalf("recovered %d snapshot series through the chain, want 5", stats.SnapshotSeries)
	}
	mustEqualArchives(t, st3.DB(), ref)
}

// TestSeedDeclinedOnCorruptChain makes sure the seed is conservative: a
// partial snapshot that no longer reads cleanly means the on-disk chain
// is not a trustworthy baseline, so the first compaction after reboot
// must fall back to a fresh full snapshot (which also supersedes and
// removes the corrupt link).
func TestSeedDeclinedOnCorruptChain(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		appendN(t, st, ref, name, 0, 6)
	}
	rotateSnapshot(t, st)
	appendN(t, st, ref, "a", 6, 4)
	rotateSnapshot(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, parts, _ := dirFiles(t, dir)
	if len(parts) != 1 {
		t.Fatalf("%d partials before corruption, want 1", len(parts))
	}
	if err := os.Truncate(parts[0].path, fileSize(t, parts[0])/2); err != nil {
		t.Fatal(err)
	}

	st2, _ := openStore(t, dir, SyncAlways)
	defer st2.Close()
	appendN(t, st2, ref, "b", 6, 2)
	rotateSnapshot(t, st2)
	snaps, parts, _ := dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 0 {
		t.Fatalf("post-corruption compaction: %d full, %d partial; want a fresh full and the corrupt link gone", len(snaps), len(parts))
	}
}
