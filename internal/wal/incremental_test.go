package wal

import (
	"os"
	"testing"

	"github.com/pla-go/pla/internal/tsdb"
)

// rotateSnapshot runs one compaction cycle on shard 0: rotate the log
// and snapshot the state it covered, exactly as the server's worker
// does between fences.
func rotateSnapshot(t *testing.T, st *Store) {
	t.Helper()
	seq, err := st.Shard(0).Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Shard(0).Snapshot(seq); err != nil {
		t.Fatal(err)
	}
}

// dirFiles scans shard 0's directory and returns its full snapshots,
// incremental snapshots and wal files.
func dirFiles(t *testing.T, dir string) (snaps, parts, wals []seqFile) {
	t.Helper()
	snaps, parts, wals, _, err := scanDir(shard0Dir(dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return snaps, parts, wals
}

// fileSize returns a seqFile's size in bytes.
func fileSize(t *testing.T, f seqFile) int64 {
	t.Helper()
	info, err := os.Stat(f.path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestIncrementalSnapshotChain drives the dirty-tracking compaction
// path end to end: the first snapshot is full, later ones carry only
// the dirtied series (and are correspondingly smaller), and recovery
// through the chain — full baseline plus partials plus wal tail —
// reproduces the live archive exactly.
func TestIncrementalSnapshotChain(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)

	// Five series so a single dirty series stays under the
	// half-the-owned-set threshold that forces a full snapshot.
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		appendN(t, st, ref, name, 0, 6)
	}
	rotateSnapshot(t, st)
	snaps, parts, wals := dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 0 {
		t.Fatalf("after first compaction: %d full, %d partial; want 1, 0 (first snapshot must be full)", len(snaps), len(parts))
	}
	if len(wals) != 1 {
		t.Fatalf("after first compaction: %d wal files, want 1 (the fresh tail)", len(wals))
	}
	fullSize := fileSize(t, snaps[0])

	// Dirty only "a": the next snapshot must be a partial holding just
	// that series.
	appendN(t, st, ref, "a", 6, 4)
	rotateSnapshot(t, st)
	snaps, parts, _ = dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 1 {
		t.Fatalf("after dirty-one compaction: %d full, %d partial; want 1, 1", len(snaps), len(parts))
	}
	if ps := fileSize(t, parts[0]); ps >= fullSize {
		t.Fatalf("partial snapshot is %d bytes, full is %d; partial must be smaller", ps, fullSize)
	}
	got := tsdb.New()
	if n, err := mergeSnapshot(parts[0].path, got); err != nil || n != 1 {
		t.Fatalf("partial holds %d series (err %v), want exactly the dirty one", n, err)
	}
	if names := got.Names(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("partial holds %v, want [a]", names)
	}

	// Dirty "b" next: the chain grows and each link covers its own
	// delta. Then leave a wal tail behind ("c" gets more segments that
	// no snapshot covers) and recover everything.
	appendN(t, st, ref, "b", 6, 3)
	rotateSnapshot(t, st)
	appendN(t, st, ref, "c", 6, 2)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, parts, _ = dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 2 {
		t.Fatalf("before recovery: %d full, %d partial; want 1, 2", len(snaps), len(parts))
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Migrated {
		t.Fatalf("chain recovery migrated: %+v", stats)
	}
	if stats.SnapshotSeries != 5 {
		t.Fatalf("recovered %d snapshot series, want 5", stats.SnapshotSeries)
	}
	if stats.Replayed != 2 {
		t.Fatalf("replayed %d records, want the 2 in the tail", stats.Replayed)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestIncrementalChainForcesFull checks both full-snapshot triggers:
// chain length (maxPartialChain partials force a fresh full baseline,
// which collapses the chain on disk) and dirty fraction (half or more
// of the owned series dirty goes straight to a full).
func TestIncrementalChainForcesFull(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	defer st.Close()

	names := []string{"a", "b", "c", "d", "e"}
	for _, name := range names {
		appendN(t, st, ref, name, 0, 3)
	}
	rotateSnapshot(t, st) // full #1
	for i := 0; i < maxPartialChain; i++ {
		appendN(t, st, ref, names[i%len(names)], 3+i, 1)
		rotateSnapshot(t, st)
		snaps, parts, _ := dirFiles(t, dir)
		if len(snaps) != 1 || len(parts) != i+1 {
			t.Fatalf("round %d: %d full, %d partial; want 1, %d", i, len(snaps), len(parts), i+1)
		}
	}

	// The chain is at the cap: the next compaction must write a full
	// snapshot and delete every superseded link.
	appendN(t, st, ref, "a", 40, 1)
	rotateSnapshot(t, st)
	snaps, parts, _ := dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 0 {
		t.Fatalf("after chain cap: %d full, %d partial; want the chain collapsed into 1 full", len(snaps), len(parts))
	}

	// Dirty 3 of 5 series (≥ half): partial would save little, expect a
	// full generation again.
	for _, name := range names[:3] {
		appendN(t, st, ref, name, 50, 1)
	}
	rotateSnapshot(t, st)
	snaps, parts, _ = dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 0 {
		t.Fatalf("after majority-dirty compaction: %d full, %d partial; want 1, 0", len(snaps), len(parts))
	}
	mustEqualArchives(t, st.DB(), ref)
}

// TestIncrementalCorruptPartialFallsBack corrupts the newest chain
// link: recovery must drop that file's contribution with a warning and
// serve the dirty series from the older generation — the same
// newest-readable fallback full snapshots have — while every other
// series stays intact.
func TestIncrementalCorruptPartialFallsBack(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)

	for _, name := range []string{"a", "b", "c", "d", "e"} {
		appendN(t, st, ref, name, 0, 5)
	}
	rotateSnapshot(t, st)
	appendN(t, st, ref, "a", 5, 4)
	rotateSnapshot(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, parts, _ := dirFiles(t, dir)
	if len(parts) != 1 {
		t.Fatalf("%d partials on disk, want 1", len(parts))
	}
	if err := os.Truncate(parts[0].path, fileSize(t, parts[0])/2); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.SnapshotSeries != 5 {
		t.Fatalf("recovered %d snapshot series, want 5", stats.SnapshotSeries)
	}
	a, err := st2.DB().Get("a")
	if err != nil {
		t.Fatal(err)
	}
	// The partial's delta is gone (its wal files were deleted when it
	// was written); "a" falls back to the full snapshot's copy.
	if a.Len() != 5 {
		t.Fatalf("series a has %d segments, want the full baseline's 5", a.Len())
	}
	for _, name := range []string{"b", "c", "d", "e"} {
		s, err := st2.DB().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != 5 {
			t.Fatalf("series %s has %d segments, want 5", name, s.Len())
		}
	}
}

// TestCloseSnapshotCollapsesChain checks the graceful-drain contract
// under incremental compaction: CloseSnapshot writes a full final
// snapshot, so the directory ends with exactly one file regardless of
// how long the chain was.
func TestCloseSnapshotCollapsesChain(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)

	for _, name := range []string{"a", "b", "c", "d", "e"} {
		appendN(t, st, ref, name, 0, 4)
	}
	rotateSnapshot(t, st)
	appendN(t, st, ref, "b", 4, 2)
	rotateSnapshot(t, st)
	appendN(t, st, ref, "c", 4, 2)
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}

	snaps, parts, wals := dirFiles(t, dir)
	if len(snaps) != 1 || len(parts) != 0 || len(wals) != 0 {
		t.Fatalf("after drain: %d full, %d partial, %d wal; want exactly 1 full", len(snaps), len(parts), len(wals))
	}
	entries, err := os.ReadDir(shard0Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("shard dir holds %v, want one snapshot", names)
	}
	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.SnapshotSeries != 5 || stats.Replayed != 0 {
		t.Fatalf("post-drain recovery stats %+v, want 5 snapshot series, 0 replayed", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}
