package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/tsdb"
)

// fuzzSeedWAL builds a small valid wal file's bytes for the seed corpus.
func fuzzSeedWAL(tb testing.TB) []byte {
	dir := tb.TempDir()
	st, _, err := Open(dir, 1, tsdb.New(), Options{Policy: SyncAlways})
	if err != nil {
		tb.Fatal(err)
	}
	s, _, err := st.DB().GetOrCreate("seed", []float64{0.5}, false)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(s, testSeg(i)); err != nil {
			tb.Fatal(err)
		}
		if err := s.Append(testSeg(i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		tb.Fatal(err)
	}
	_, _, wals, _, err := scanDir(shard0Dir(dir), Options{})
	if err != nil || len(wals) != 1 {
		tb.Fatalf("seed scan: %v (%d files)", err, len(wals))
	}
	raw, err := os.ReadFile(wals[0].path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzWALReplay feeds arbitrary bytes to recovery as a shard's wal file:
// it must never panic, and whatever it recovers (after its own torn-tail
// truncation) must recover identically a second time — replay is
// idempotent on its own output.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedWAL(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])         // torn tail
	f.Add(seed[:6])                   // header only
	f.Add([]byte{})                   // crash before first flush
	f.Add([]byte("PLAW\x01\x01"))     // empty but valid
	f.Add([]byte("PLAW\x02\x01junk")) // wrong version
	f.Add([]byte("NOPE"))             // wrong magic
	corrupted := append([]byte(nil), seed...)
	corrupted[len(corrupted)/2] ^= 0xFF
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		sdir := shard0Dir(dir)
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(sdir, fmt.Sprintf(walPattern, uint64(1)))
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		st, stats, err := Open(dir, 1, tsdb.New(), Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panics are not
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// Second recovery over the truncated file must be clean and agree.
		// Drop the tail file Open created so only the fuzzed file replays.
		_, _, wals, _, err := scanDir(sdir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, wf := range wals {
			if wf.seq != 1 {
				os.Remove(wf.path)
			}
		}
		st2, stats2, err := Open(dir, 1, tsdb.New(), Options{})
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		defer st2.Close()
		if stats2.TruncatedBytes != 0 {
			t.Fatalf("second recovery still truncating (%d bytes) after first pass truncated %d",
				stats2.TruncatedBytes, stats.TruncatedBytes)
		}
		if stats2.Replayed != stats.Replayed || stats2.Rejected != stats.Rejected || stats2.Skipped != stats.Skipped {
			t.Fatalf("second recovery differs: %+v vs %+v", stats2, stats)
		}
		got, want := st2.DB().Names(), st.DB().Names()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("second recovery series %v, want %v", got, want)
		}
	})
}
