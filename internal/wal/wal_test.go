package wal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
)

// testSeg builds the i-th segment of a deterministic one-dimensional
// sequence: disconnected lines on [2i, 2i+1].
func testSeg(i int) core.Segment {
	t0 := float64(2 * i)
	return core.Segment{
		T0: t0, T1: t0 + 1,
		X0:     []float64{math.Sin(t0)},
		X1:     []float64{math.Sin(t0) + 0.5},
		Points: 10 + i,
	}
}

// appendN write-aheads and applies n segments to series name in both the
// store and a reference archive.
func appendN(t *testing.T, st *Store, ref *tsdb.Archive, name string, lo, n int) {
	t.Helper()
	eps := []float64{0.25}
	s, _, err := st.DB().GetOrCreate(name, eps, false)
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := ref.GetOrCreate(name, eps, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := lo; i < lo+n; i++ {
		seg := testSeg(i)
		if err := st.Append(s, seg); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(seg); err != nil {
			t.Fatal(err)
		}
		if err := rs.Append(seg); err != nil {
			t.Fatal(err)
		}
	}
}

// mustEqualArchives compares two archives segment for segment.
func mustEqualArchives(t *testing.T, got, want *tsdb.Archive) {
	t.Helper()
	gn, wn := got.Names(), want.Names()
	if fmt.Sprint(gn) != fmt.Sprint(wn) {
		t.Fatalf("series %v, want %v", gn, wn)
	}
	for _, name := range wn {
		gs, _ := got.Get(name)
		ws, _ := want.Get(name)
		gsegs, wsegs := gs.Segments(), ws.Segments()
		if len(gsegs) != len(wsegs) {
			t.Fatalf("%s: %d segments, want %d", name, len(gsegs), len(wsegs))
		}
		for i := range wsegs {
			g, w := gsegs[i], wsegs[i]
			if g.T0 != w.T0 || g.T1 != w.T1 || g.Connected != w.Connected || g.Points != w.Points ||
				fmt.Sprint(g.X0) != fmt.Sprint(w.X0) || fmt.Sprint(g.X1) != fmt.Sprint(w.X1) {
				t.Fatalf("%s: segment %d differs: got %+v, want %+v", name, i, g, w)
			}
		}
		if gs.Points() != ws.Points() {
			t.Fatalf("%s: points %d, want %d", name, gs.Points(), ws.Points())
		}
	}
}

func openStore(t *testing.T, dir string, policy SyncPolicy) (*Store, RecoverStats) {
	t.Helper()
	st, stats, err := Open(dir, tsdb.New(), Options{Policy: policy, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return st, stats
}

// TestReplayFromTail closes the log without any snapshot and recovers
// everything from the wal alone.
func TestReplayFromTail(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, stats := openStore(t, dir, SyncAlways)
	if !stats.Empty() {
		t.Fatalf("fresh dir not empty: %+v", stats)
	}
	appendN(t, st, ref, "a", 0, 7)
	appendN(t, st, ref, "b", 0, 3)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Replayed != 10 || stats.Skipped != 0 || stats.Rejected != 0 {
		t.Fatalf("replay stats %+v, want 10 replayed", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestTornTailTruncation cuts the wal mid-record: recovery must keep the
// whole records, truncate the torn bytes in place, and a second recovery
// must see a clean file.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "series", 0, 5)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 3 bytes off the only wal file.
	_, wals, err := scanDir(dir, Options{})
	if err != nil || len(wals) != 1 {
		t.Fatalf("scan: %v, %d wal files", err, len(wals))
	}
	info, err := os.Stat(wals[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0].path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	// The reference loses its last segment too.
	wantRef := tsdb.New()
	ws, _, _ := wantRef.GetOrCreate("series", []float64{0.25}, false)
	for i := 0; i < 4; i++ {
		if err := ws.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}

	st2, stats := openStore(t, dir, SyncAlways)
	if stats.Replayed != 4 || stats.TruncatedBytes == 0 {
		t.Fatalf("stats %+v, want 4 replayed and a truncated tail", stats)
	}
	mustEqualArchives(t, st2.DB(), wantRef)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// After truncation the old file replays with no torn tail.
	st3, stats := openStore(t, dir, SyncAlways)
	defer st3.Close()
	if stats.TruncatedBytes != 0 || stats.Replayed != 4 {
		t.Fatalf("second recovery stats %+v, want clean 4-record replay", stats)
	}
	mustEqualArchives(t, st3.DB(), wantRef)
}

// TestSnapshotPlusTail compacts mid-stream and verifies recovery from
// snapshot + fresh tail matches the reference archive exactly.
func TestSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "a", 0, 6)
	appendN(t, st, ref, "b", 0, 4)

	// Compact: rotate, (no concurrent appliers to fence here), snapshot.
	oldSeq, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	// The superseded wal file must be gone.
	_, wals, _ := scanDir(dir, Options{})
	for _, wf := range wals {
		if wf.seq <= oldSeq {
			t.Fatalf("wal seq %d survived compaction", wf.seq)
		}
	}

	appendN(t, st, ref, "a", 6, 3) // tail after the snapshot
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.SnapshotSeries != 2 || stats.Replayed != 3 {
		t.Fatalf("stats %+v, want 2 snapshot series + 3 replayed", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestCrashMidCompaction restores the pre-snapshot wal file after the
// snapshot committed — the overlap a crash between rename and cleanup
// leaves — and verifies the per-record index dedups the replay.
func TestCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "dup", 0, 5)

	oldSeq, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Save the rotated wal before Snapshot deletes it.
	_, wals, _ := scanDir(dir, Options{})
	var oldPath string
	var oldBytes []byte
	for _, wf := range wals {
		if wf.seq == oldSeq {
			oldPath = wf.path
			if oldBytes, err = os.ReadFile(wf.path); err != nil {
				t.Fatal(err)
			}
		}
	}
	if oldPath == "" {
		t.Fatal("rotated wal not found")
	}
	if err := st.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	appendN(t, st, ref, "dup", 5, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash-before-cleanup state.
	if err := os.WriteFile(oldPath, oldBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Skipped != 5 {
		t.Fatalf("stats %+v, want 5 skipped (snapshot overlap)", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestRecoverySurvivesCorruptSnapshot scribbles over the newest snapshot:
// recovery must fall back to the older generation + wal replay rather
// than load garbage or fail.
func TestRecoverySurvivesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "s", 0, 4)
	oldSeq, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	appendN(t, st, ref, "s", 4, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _, _ := scanDir(dir, Options{})
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots, want 1", len(snaps))
	}
	if err := os.WriteFile(snaps[0].path, []byte("PLAAgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The snapshot is gone for good, and so are the wal files it
	// superseded — only the post-snapshot tail can come back.
	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.SnapshotSeries != 0 || stats.Replayed != 2 {
		t.Fatalf("stats %+v, want 0 snapshot series + 2 replayed", stats)
	}
	want := tsdb.New()
	wsr, _, _ := want.GetOrCreate("s", []float64{0.25}, false)
	for i := 4; i < 6; i++ {
		if err := wsr.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustEqualArchives(t, st2.DB(), want)
}

// TestCloseSnapshot drains to a single snapshot file and recovers from it
// with no wal replay.
func TestCloseSnapshot(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncInterval)
	appendN(t, st, ref, "x", 0, 8)
	appendN(t, st, ref, "y", 0, 2)
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}

	snaps, wals, err := scanDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || len(wals) != 0 {
		t.Fatalf("after CloseSnapshot: %d snapshots, %d wals; want 1, 0", len(snaps), len(wals))
	}

	st2, stats := openStore(t, dir, SyncInterval)
	defer st2.Close()
	if stats.SnapshotSeries != 2 || stats.Replayed != 0 || stats.WALFiles != 0 {
		t.Fatalf("stats %+v, want pure snapshot recovery", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestRejectedReplayDeterminism write-aheads an out-of-order segment the
// archive refuses; replay must refuse it identically instead of storing
// it.
func TestRejectedReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncAlways)
	eps := []float64{0.25}
	s, _, err := st.DB().GetOrCreate("r", eps, false)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := testSeg(3), testSeg(1) // bad starts before good
	for _, seg := range []core.Segment{good, bad} {
		if err := st.Append(s, seg); err != nil {
			t.Fatal(err)
		}
		s.Append(seg) // second append fails: out of order — mirrored on replay
	}
	if s.Len() != 1 {
		t.Fatalf("live series has %d segments, want 1", s.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Replayed != 1 || stats.Rejected != 1 {
		t.Fatalf("stats %+v, want 1 replayed + 1 rejected", stats)
	}
	s2, err := st2.DB().Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("replayed series has %d segments, want 1", s2.Len())
	}
}

// TestAppendAfterClose checks the closed-log guard.
func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncOff)
	s, _, err := st.DB().GetOrCreate("c", []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(s, testSeg(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// TestMatchSeqWideSequences checks the file-name parser past the zero
// padding: Sprintf widens beyond 8 digits, and scanning must keep up.
func TestMatchSeqWideSequences(t *testing.T) {
	for _, seq := range []uint64{0, 1, 99999999, 100000000, 123456789012} {
		name := fmt.Sprintf(walPattern, seq)
		var got uint64
		if !matchSeq(name, walPattern, &got) || got != seq {
			t.Errorf("matchSeq(%q) = %v (seq %d), want %d", name, matchSeq(name, walPattern, &got), got, seq)
		}
	}
	var v uint64
	for _, bad := range []string{"wal-1234567.log", "wal--0000001.log", "wal-+1234567.log", "wal-0000000x.log"} {
		if matchSeq(bad, walPattern, &v) {
			t.Errorf("matchSeq accepted %q", bad)
		}
	}
}

// TestReplaySkipsRenamedFile: a wal file whose header sequence disagrees
// with its name (a restore put it in the wrong place) must be ignored,
// not replayed out of order.
func TestReplaySkipsRenamedFile(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "s", 0, 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, wals, err := scanDir(dir, Options{})
	if err != nil || len(wals) != 1 {
		t.Fatalf("scan: %v (%d files)", err, len(wals))
	}
	// Pretend a backup restored seq 1 as seq 9.
	renamed := filepath.Join(dir, fmt.Sprintf(walPattern, uint64(9)))
	if err := os.Rename(wals[0].path, renamed); err != nil {
		t.Fatal(err)
	}
	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Replayed != 0 || stats.WALFiles != 0 {
		t.Fatalf("stats %+v, want the renamed file ignored", stats)
	}
}

// TestScanDirIgnoresStrangers checks unrelated files neither replay nor
// get deleted by compaction cleanup.
func TestScanDirIgnoresStrangers(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README", "wal-junk.log", "snap-1.plaa", "wal-00000001.log.bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snaps, wals, err := scanDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 || len(wals) != 0 {
		t.Fatalf("scan picked up strangers: %v %v", snaps, wals)
	}
}
