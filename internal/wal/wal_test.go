package wal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
)

// testSeg builds the i-th segment of a deterministic one-dimensional
// sequence: disconnected lines on [2i, 2i+1].
func testSeg(i int) core.Segment {
	t0 := float64(2 * i)
	return core.Segment{
		T0: t0, T1: t0 + 1,
		X0:     []float64{math.Sin(t0)},
		X1:     []float64{math.Sin(t0) + 0.5},
		Points: 10 + i,
	}
}

// appendN write-aheads and applies n segments to series name in both the
// store and a reference archive.
func appendN(t *testing.T, st *Store, ref *tsdb.Archive, name string, lo, n int) {
	t.Helper()
	eps := []float64{0.25}
	s, _, err := st.DB().GetOrCreate(name, eps, false)
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := ref.GetOrCreate(name, eps, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := lo; i < lo+n; i++ {
		seg := testSeg(i)
		if err := st.Append(s, seg); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(seg); err != nil {
			t.Fatal(err)
		}
		if err := rs.Append(seg); err != nil {
			t.Fatal(err)
		}
	}
}

// mustEqualArchives compares two archives segment for segment.
func mustEqualArchives(t *testing.T, got, want *tsdb.Archive) {
	t.Helper()
	gn, wn := got.Names(), want.Names()
	if fmt.Sprint(gn) != fmt.Sprint(wn) {
		t.Fatalf("series %v, want %v", gn, wn)
	}
	for _, name := range wn {
		gs, _ := got.Get(name)
		ws, _ := want.Get(name)
		gsegs, wsegs := gs.Segments(), ws.Segments()
		if len(gsegs) != len(wsegs) {
			t.Fatalf("%s: %d segments, want %d", name, len(gsegs), len(wsegs))
		}
		for i := range wsegs {
			g, w := gsegs[i], wsegs[i]
			if g.T0 != w.T0 || g.T1 != w.T1 || g.Connected != w.Connected || g.Points != w.Points ||
				fmt.Sprint(g.X0) != fmt.Sprint(w.X0) || fmt.Sprint(g.X1) != fmt.Sprint(w.X1) {
				t.Fatalf("%s: segment %d differs: got %+v, want %+v", name, i, g, w)
			}
		}
		if gs.Points() != ws.Points() {
			t.Fatalf("%s: points %d, want %d", name, gs.Points(), ws.Points())
		}
	}
}

func openStore(t *testing.T, dir string, policy SyncPolicy) (*Store, RecoverStats) {
	t.Helper()
	return openStoreN(t, dir, 1, policy)
}

func openStoreN(t *testing.T, dir string, nShards int, policy SyncPolicy) (*Store, RecoverStats) {
	t.Helper()
	st, stats, err := Open(dir, nShards, tsdb.New(), Options{Policy: policy, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return st, stats
}

// shard0Dir is the partition directory most single-shard tests poke at.
func shard0Dir(dir string) string { return filepath.Join(dir, shardDirName(0)) }

// TestReplayFromTail closes the log without any snapshot and recovers
// everything from the wal alone.
func TestReplayFromTail(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, stats := openStore(t, dir, SyncAlways)
	if !stats.Empty() {
		t.Fatalf("fresh dir not empty: %+v", stats)
	}
	appendN(t, st, ref, "a", 0, 7)
	appendN(t, st, ref, "b", 0, 3)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Replayed != 10 || stats.Skipped != 0 || stats.Rejected != 0 {
		t.Fatalf("replay stats %+v, want 10 replayed", stats)
	}
	if stats.Migrated {
		t.Fatalf("same-shard-count recovery migrated: %+v", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestTornTailTruncation cuts the wal mid-record: recovery must keep the
// whole records, truncate the torn bytes in place, and a second recovery
// must see a clean file.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "series", 0, 5)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 3 bytes off the only wal file.
	_, _, wals, _, err := scanDir(shard0Dir(dir), Options{})
	if err != nil || len(wals) != 1 {
		t.Fatalf("scan: %v, %d wal files", err, len(wals))
	}
	info, err := os.Stat(wals[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0].path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	// The reference loses its last segment too.
	wantRef := tsdb.New()
	ws, _, _ := wantRef.GetOrCreate("series", []float64{0.25}, false)
	for i := 0; i < 4; i++ {
		if err := ws.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}

	st2, stats := openStore(t, dir, SyncAlways)
	if stats.Replayed != 4 || stats.TruncatedBytes == 0 {
		t.Fatalf("stats %+v, want 4 replayed and a truncated tail", stats)
	}
	mustEqualArchives(t, st2.DB(), wantRef)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// After truncation the old file replays with no torn tail.
	st3, stats := openStore(t, dir, SyncAlways)
	defer st3.Close()
	if stats.TruncatedBytes != 0 || stats.Replayed != 4 {
		t.Fatalf("second recovery stats %+v, want clean 4-record replay", stats)
	}
	mustEqualArchives(t, st3.DB(), wantRef)
}

// TestSnapshotPlusTail compacts mid-stream and verifies recovery from
// snapshot + fresh tail matches the reference archive exactly.
func TestSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "a", 0, 6)
	appendN(t, st, ref, "b", 0, 4)

	// Compact: rotate, (no concurrent appliers to fence here), snapshot.
	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	// The superseded wal file must be gone.
	_, _, wals, _, _ := scanDir(shard0Dir(dir), Options{})
	for _, wf := range wals {
		if wf.seq <= oldSeq {
			t.Fatalf("wal seq %d survived compaction", wf.seq)
		}
	}

	appendN(t, st, ref, "a", 6, 3) // tail after the snapshot
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.SnapshotSeries != 2 || stats.Replayed != 3 {
		t.Fatalf("stats %+v, want 2 snapshot series + 3 replayed", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestCrashMidCompaction restores the pre-snapshot wal file after the
// snapshot committed — the overlap a crash between rename and cleanup
// leaves — and verifies the per-record index dedups the replay.
func TestCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "dup", 0, 5)

	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Save the rotated wal before Snapshot deletes it.
	_, _, wals, _, _ := scanDir(shard0Dir(dir), Options{})
	var oldPath string
	var oldBytes []byte
	for _, wf := range wals {
		if wf.seq == oldSeq {
			oldPath = wf.path
			if oldBytes, err = os.ReadFile(wf.path); err != nil {
				t.Fatal(err)
			}
		}
	}
	if oldPath == "" {
		t.Fatal("rotated wal not found")
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	appendN(t, st, ref, "dup", 5, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash-before-cleanup state.
	if err := os.WriteFile(oldPath, oldBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Skipped != 5 {
		t.Fatalf("stats %+v, want 5 skipped (snapshot overlap)", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestRecoverySurvivesCorruptSnapshot scribbles over the newest snapshot:
// recovery must fall back to the older generation + wal replay rather
// than load garbage or fail.
func TestRecoverySurvivesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "s", 0, 4)
	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	appendN(t, st, ref, "s", 4, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _, _, _, _ := scanDir(shard0Dir(dir), Options{})
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots, want 1", len(snaps))
	}
	if err := os.WriteFile(snaps[0].path, []byte("PLAAgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// The snapshot is gone for good, and so are the wal files it
	// superseded — only the post-snapshot tail can come back.
	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.SnapshotSeries != 0 || stats.Replayed != 2 {
		t.Fatalf("stats %+v, want 0 snapshot series + 2 replayed", stats)
	}
	want := tsdb.New()
	wsr, _, _ := want.GetOrCreate("s", []float64{0.25}, false)
	for i := 4; i < 6; i++ {
		if err := wsr.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustEqualArchives(t, st2.DB(), want)
}

// TestCloseSnapshot drains to a single snapshot file per shard and
// recovers from it with no wal replay.
func TestCloseSnapshot(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncInterval)
	appendN(t, st, ref, "x", 0, 8)
	appendN(t, st, ref, "y", 0, 2)
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}

	snaps, _, wals, _, err := scanDir(shard0Dir(dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || len(wals) != 0 {
		t.Fatalf("after CloseSnapshot: %d snapshots, %d wals; want 1, 0", len(snaps), len(wals))
	}

	st2, stats := openStore(t, dir, SyncInterval)
	defer st2.Close()
	if stats.SnapshotSeries != 2 || stats.Replayed != 0 || stats.WALFiles != 0 {
		t.Fatalf("stats %+v, want pure snapshot recovery", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestRejectedReplayDeterminism write-aheads an out-of-order segment the
// archive refuses; replay must refuse it identically instead of storing
// it.
func TestRejectedReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncAlways)
	eps := []float64{0.25}
	s, _, err := st.DB().GetOrCreate("r", eps, false)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := testSeg(3), testSeg(1) // bad starts before good
	for _, seg := range []core.Segment{good, bad} {
		if err := st.Append(s, seg); err != nil {
			t.Fatal(err)
		}
		s.Append(seg) // second append fails: out of order — mirrored on replay
	}
	if s.Len() != 1 {
		t.Fatalf("live series has %d segments, want 1", s.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Replayed != 1 || stats.Rejected != 1 {
		t.Fatalf("stats %+v, want 1 replayed + 1 rejected", stats)
	}
	s2, err := st2.DB().Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("replayed series has %d segments, want 1", s2.Len())
	}
}

// TestAppendAfterClose checks the closed-log guard.
func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncOff)
	s, _, err := st.DB().GetOrCreate("c", []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(s, testSeg(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// TestMatchSeqWideSequences checks the file-name parser past the zero
// padding: Sprintf widens beyond 8 digits, and scanning must keep up.
func TestMatchSeqWideSequences(t *testing.T) {
	for _, seq := range []uint64{0, 1, 99999999, 100000000, 123456789012} {
		name := fmt.Sprintf(walPattern, seq)
		var got uint64
		if !matchSeq(name, walPattern, &got) || got != seq {
			t.Errorf("matchSeq(%q) = %v (seq %d), want %d", name, matchSeq(name, walPattern, &got), got, seq)
		}
	}
	var v uint64
	for _, bad := range []string{"wal-1234567.log", "wal--0000001.log", "wal-+1234567.log", "wal-0000000x.log"} {
		if matchSeq(bad, walPattern, &v) {
			t.Errorf("matchSeq accepted %q", bad)
		}
	}
}

// TestReplaySkipsRenamedFile: a wal file whose header sequence disagrees
// with its name (a restore put it in the wrong place) must be ignored,
// not replayed out of order.
func TestReplaySkipsRenamedFile(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	appendN(t, st, ref, "s", 0, 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, wals, _, err := scanDir(shard0Dir(dir), Options{})
	if err != nil || len(wals) != 1 {
		t.Fatalf("scan: %v (%d files)", err, len(wals))
	}
	// Pretend a backup restored seq 1 as seq 9.
	renamed := filepath.Join(shard0Dir(dir), fmt.Sprintf(walPattern, uint64(9)))
	if err := os.Rename(wals[0].path, renamed); err != nil {
		t.Fatal(err)
	}
	st2, stats := openStore(t, dir, SyncAlways)
	defer st2.Close()
	if stats.Replayed != 0 || stats.WALFiles != 0 {
		t.Fatalf("stats %+v, want the renamed file ignored", stats)
	}
}

// TestScanDirIgnoresStrangers checks unrelated files neither replay nor
// get deleted by compaction cleanup.
func TestScanDirIgnoresStrangers(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README", "wal-junk.log", "snap-1.plaa", "wal-00000001.log.bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _, wals, _, err := scanDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 || len(wals) != 0 {
		t.Fatalf("scan picked up strangers: %v %v", snaps, wals)
	}
}

// manyShardsFill writes series spread across every partition of a
// multi-shard store, mirroring into ref.
func manyShardsFill(t *testing.T, st *Store, ref *tsdb.Archive, series, segs int) {
	t.Helper()
	for i := 0; i < series; i++ {
		appendN(t, st, ref, fmt.Sprintf("series-%02d", i), 0, segs)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedLayout verifies a multi-shard store splits its files by
// series hash: every shard dir holds only records for series it owns.
func TestPartitionedLayout(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStoreN(t, dir, 4, SyncAlways)
	manyShardsFill(t, st, ref, 16, 3)
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}

	// Every shard dir holds exactly one snapshot, and loading it alone
	// yields only series hashing to that shard.
	total := 0
	for k := 0; k < 4; k++ {
		sdir := filepath.Join(dir, shardDirName(k))
		snaps, _, wals, _, err := scanDir(sdir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != 1 || len(wals) != 0 {
			t.Fatalf("shard %d: %d snapshots, %d wals; want 1, 0", k, len(snaps), len(wals))
		}
		part := tsdb.New()
		n, err := mergeSnapshot(snaps[0].path, part)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range part.Names() {
			if ShardIndex(name, 4) != k {
				t.Errorf("series %s in shard %d, owns %d", name, k, ShardIndex(name, 4))
			}
		}
		total += n
	}
	if total != 16 {
		t.Fatalf("shards hold %d series total, want 16", total)
	}

	st2, stats := openStoreN(t, dir, 4, SyncAlways)
	defer st2.Close()
	if stats.Migrated || stats.Dirs != 4 || stats.SnapshotSeries != 16 {
		t.Fatalf("recovery stats %+v, want 4 clean dirs, 16 snapshot series", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
}

// TestShardCountChange replays logs written with one shard count into a
// different sharding, both growing and shrinking — the restart-with-new
// `-shards` case. The first reopen migrates (fresh per-shard snapshots
// under the new layout); a second reopen must be clean.
func TestShardCountChange(t *testing.T) {
	for _, tc := range []struct{ from, to int }{{4, 2}, {2, 8}, {3, 1}} {
		t.Run(fmt.Sprintf("%d_to_%d", tc.from, tc.to), func(t *testing.T) {
			dir := t.TempDir()
			ref := tsdb.New()
			st, _ := openStoreN(t, dir, tc.from, SyncAlways)
			manyShardsFill(t, st, ref, 12, 4)
			// Close WITHOUT a snapshot: the new sharding must replay raw
			// per-shard tails written under the old sharding.
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st2, stats := openStoreN(t, dir, tc.to, SyncAlways)
			if !stats.Migrated {
				t.Fatalf("shard count %d→%d did not migrate: %+v", tc.from, tc.to, stats)
			}
			mustEqualArchives(t, st2.DB(), ref)
			appendN(t, st2, ref, "post-migrate", 0, 2)
			if err := st2.CloseSnapshot(); err != nil {
				t.Fatal(err)
			}

			// Old-layout dirs beyond the new count are gone.
			for k := tc.to; k < tc.from; k++ {
				if _, err := os.Stat(filepath.Join(dir, shardDirName(k))); !os.IsNotExist(err) {
					t.Errorf("stray shard dir %d survived migration (err=%v)", k, err)
				}
			}

			st3, stats := openStoreN(t, dir, tc.to, SyncAlways)
			defer st3.Close()
			if stats.Migrated || stats.Reconciled != 0 {
				t.Fatalf("second reopen migrated again: %+v", stats)
			}
			mustEqualArchives(t, st3.DB(), ref)
		})
	}
}

// TestLegacySingleLogMigration boots a partitioned store on a PR 2
// layout — snapshot + wal directly in the data dir root — and verifies
// the one-shot migration: recovered archive identical, root files gone,
// per-shard snapshots written, second boot clean.
func TestLegacySingleLogMigration(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	// Fabricate the legacy layout with a 1-shard store, then promote its
	// partition files to the root, as PR 2 wrote them.
	st, _ := openStore(t, dir, SyncAlways)
	manyShardsFill(t, st, ref, 8, 3)
	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}
	appendN(t, st, ref, "series-00", 3, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _, wals, _, err := scanDir(shard0Dir(dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range append(snaps, wals...) {
		if err := os.Rename(f.path, filepath.Join(dir, filepath.Base(f.path))); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(shard0Dir(dir)); err != nil {
		t.Fatal(err)
	}

	st2, stats := openStoreN(t, dir, 4, SyncAlways)
	if !stats.Migrated {
		t.Fatalf("legacy layout did not migrate: %+v", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Root holds no log files any more; the state lives in shard dirs.
	rootSnaps, _, rootWals, _, err := scanDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rootSnaps)+len(rootWals) != 0 {
		t.Fatalf("legacy root files survived migration: %v %v", rootSnaps, rootWals)
	}

	st3, stats := openStoreN(t, dir, 4, SyncAlways)
	defer st3.Close()
	if stats.Migrated {
		t.Fatalf("second boot migrated again: %+v", stats)
	}
	mustEqualArchives(t, st3.DB(), ref)
}

// TestCrashMidMigrationReconciles interrupts a migration after the new
// snapshots are written but before the old layout is deleted: the same
// series then exists in two places, and the next boot must keep the
// longest copy exactly once.
func TestCrashMidMigrationReconciles(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStoreN(t, dir, 2, SyncAlways)
	manyShardsFill(t, st, ref, 6, 3)
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}

	// Duplicate every shard snapshot into the root as a stale "legacy"
	// copy — the overlap state a crash between write-new and delete-old
	// leaves (here the copies are equal-length; longest-wins keeps one).
	for k := 0; k < 2; k++ {
		snaps, _, _, _, err := scanDir(filepath.Join(dir, shardDirName(k)), Options{})
		if err != nil || len(snaps) != 1 {
			t.Fatalf("shard %d scan: %v (%d snaps)", k, err, len(snaps))
		}
		raw, err := os.ReadFile(snaps[0].path)
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(dir, fmt.Sprintf(snapPattern, uint64(k+1)))
		if err := os.WriteFile(dst, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, stats := openStoreN(t, dir, 2, SyncAlways)
	if !stats.Migrated || stats.Reconciled == 0 {
		t.Fatalf("overlap boot stats %+v, want migration with reconciled duplicates", stats)
	}
	mustEqualArchives(t, st2.DB(), ref)
	if err := st2.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}

	st3, stats := openStoreN(t, dir, 2, SyncAlways)
	defer st3.Close()
	if stats.Migrated || stats.Reconciled != 0 {
		t.Fatalf("post-reconcile boot migrated again: %+v", stats)
	}
	mustEqualArchives(t, st3.DB(), ref)
}

// TestRetentionCompaction configures a retention window and verifies
// compaction drops exactly the segments whose end time aged out — from
// the live archive, the snapshot, and the recovered state alike.
func TestRetentionCompaction(t *testing.T) {
	dir := t.TempDir()
	db := tsdb.New()
	// testSeg(i) covers [2i, 2i+1]; 10 segments end at t=19. Retain 6
	// time units: segments ending before 19-6=13 (i ≤ 5) must go.
	st, _, err := Open(dir, 1, db, Options{Policy: SyncAlways, Retain: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := db.GetOrCreate("aging", []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Append(s, testSeg(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil {
		t.Fatal(err)
	}

	segs := s.Segments()
	if len(segs) != 4 {
		t.Fatalf("after retention compaction: %d segments, want 4 (i=6..9)", len(segs))
	}
	if segs[0].T0 != 12 {
		t.Fatalf("oldest surviving segment starts at %v, want 12", segs[0].T0)
	}
	if err := st.CloseSnapshot(); err != nil {
		t.Fatal(err)
	}

	st2, stats, err := Open(dir, 1, tsdb.New(), Options{Policy: SyncAlways, Retain: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, err := st2.DB().Get("aging")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 {
		t.Fatalf("recovered %d segments, want 4 (stats %+v)", s2.Len(), stats)
	}
}

// TestRetentionAppliedOnRecovery: segments that aged out while the store
// was closed are pruned during Open, not served until the next
// compaction.
func TestRetentionAppliedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, SyncAlways)
	s, _, err := st.DB().GetOrCreate("aging", []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Append(s, testSeg(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // no snapshot: raw tail replay
		t.Fatal(err)
	}

	st2, stats, err := Open(dir, 1, tsdb.New(), Options{Policy: SyncAlways, Retain: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if stats.RetentionDropped != 6 {
		t.Fatalf("recovery dropped %d segments, want 6 (stats %+v)", stats.RetentionDropped, stats)
	}
	s2, err := st2.DB().Get("aging")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 {
		t.Fatalf("recovered %d segments, want 4", s2.Len())
	}
}

// TestRetentionRecoveryPreservesNewAppends is the regression test for
// an acked-data-loss bug: recovery-time pruning shrinks the in-memory
// series while the old files still reconstruct the unpruned state, so
// without a re-baseline the post-boot appends would be logged with idx
// values a later replay's dedup mistakes for already-covered records.
func TestRetentionRecoveryPreservesNewAppends(t *testing.T) {
	dir := t.TempDir()
	// Boot 1 (no retention): 10 segments on the raw tail, no snapshot.
	st, _ := openStore(t, dir, SyncAlways)
	s, _, err := st.DB().GetOrCreate("aging", []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Append(s, testSeg(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 2 (retention): the recovery prune drops 6 segments, then new
	// fsync-acked appends land — their recorded indices must survive the
	// next crash.
	st2, stats, err := Open(dir, 1, tsdb.New(), Options{Policy: SyncAlways, Retain: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RetentionDropped != 6 || !stats.Migrated {
		t.Fatalf("boot 2 stats %+v, want 6 dropped with a re-baseline", stats)
	}
	s2, err := st2.DB().Get("aging")
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 12; i++ {
		if err := st2.Append(s2, testSeg(i)); err != nil {
			t.Fatal(err)
		}
		if err := s2.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil { // crash: no snapshot of the appends
		t.Fatal(err)
	}

	// Boot 3: the acked appends are there (retention prunes the window
	// forward, but never the newest segments).
	st3, _, err := Open(dir, 1, tsdb.New(), Options{Policy: SyncAlways, Retain: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	s3, err := st3.DB().Get("aging")
	if err != nil {
		t.Fatal(err)
	}
	segs := s3.Segments()
	if len(segs) == 0 || segs[len(segs)-1].T0 != 22 {
		t.Fatalf("acked appends lost across retention recovery: %d segments, last %+v", len(segs), segs[len(segs)-1:])
	}
	if segs[0].T1 < 23-6 {
		t.Fatalf("retention window not applied: oldest segment %+v", segs[0])
	}
}

// TestRetentionLiveCompactionNoDuplicates is the regression test for a
// replay-duplication bug: live compaction rotates first and prunes
// inside Snapshot, so a record logged into the fresh tail between the
// two carries a pre-prune index. After a crash, that record claims a
// position beyond the pruned series' end and its T0 equals the last
// segment's — the one shape the time-order rejection cannot catch —
// and must be recognised as a duplicate, not appended twice.
func TestRetentionLiveCompactionNoDuplicates(t *testing.T) {
	dir := t.TempDir()
	db := tsdb.New()
	st, _, err := Open(dir, 1, db, Options{Policy: SyncAlways, Retain: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := db.GetOrCreate("live", []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Append(s, testSeg(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	sh := st.Shard(0)
	oldSeq, err := sh.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// The worker keeps ingesting between the rotate and the snapshot:
	// seg10 lands in the fresh tail with idx 10 (pre-prune length).
	if err := st.Append(s, testSeg(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testSeg(10)); err != nil {
		t.Fatal(err)
	}
	if err := sh.Snapshot(oldSeq); err != nil { // prunes, then snapshots
		t.Fatal(err)
	}
	wantLen := s.Len()
	wantPoints := s.Points()
	if err := st.Close(); err != nil { // crash: the fresh tail survives
		t.Fatal(err)
	}

	st2, stats, err := Open(dir, 1, tsdb.New(), Options{Policy: SyncAlways, Retain: 6, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, err := st2.DB().Get("live")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != wantLen || s2.Points() != wantPoints {
		t.Fatalf("recovered %d segments / %d points, want %d / %d (stats %+v) — tail record duplicated",
			s2.Len(), s2.Points(), wantLen, wantPoints, stats)
	}
	segs := s2.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i].T0 == segs[i-1].T0 && segs[i].T1 == segs[i-1].T1 {
			t.Fatalf("duplicate segment after recovery: %+v", segs[i])
		}
	}
}

// TestMergePrefersNewerCopy is the regression test for duplicate
// reconciliation under retention: a stale unpruned leftover can hold
// MORE segments than the pruned-but-extended fresh copy, so recency
// (latest covered end time), not length, must decide which survives.
func TestMergePrefersNewerCopy(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Logf: t.Logf}.withDefaults()
	// Stale legacy copy in the root: segments 0..9 (10 segments, ends
	// at t=19).
	stale := tsdb.New()
	ss, _, err := stale.GetOrCreate("d", []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ss.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeSnapshot(dir, 1, stale, []string{"d"}, opts); err != nil {
		t.Fatal(err)
	}
	// Fresh shard copy: pruned to segments 6..11 (6 segments, but ends
	// at t=23 — it holds the acked appends made after the migration).
	fresh := tsdb.New()
	fs, _, err := fresh.GetOrCreate("d", []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 12; i++ {
		if err := fs.Append(testSeg(i)); err != nil {
			t.Fatal(err)
		}
	}
	sdir := shard0Dir(dir)
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(sdir, 1, fresh, []string{"d"}, opts); err != nil {
		t.Fatal(err)
	}

	st, stats, err := Open(dir, 1, tsdb.New(), Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if stats.Reconciled != 1 || !stats.Migrated {
		t.Fatalf("stats %+v, want one reconciled duplicate + migration", stats)
	}
	s, err := st.DB().Get("d")
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) != 6 || segs[len(segs)-1].T1 != 23 {
		t.Fatalf("merge kept %d segments ending at %v, want the fresh copy (6 segments through t=23)",
			len(segs), segs[len(segs)-1].T1)
	}
}

// TestLogMetricsCount checks the per-shard observability counters: bytes
// grow with appends and fsyncs count commits.
func TestLogMetricsCount(t *testing.T) {
	dir := t.TempDir()
	ref := tsdb.New()
	st, _ := openStore(t, dir, SyncAlways)
	defer st.Close()
	m0 := st.Shard(0).Metrics()
	if m0.Bytes == 0 { // header already written
		t.Fatal("fresh log reports zero bytes")
	}
	appendN(t, st, ref, "m", 0, 4)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	m := st.Shard(0).Metrics()
	if m.Bytes <= m0.Bytes {
		t.Fatalf("bytes did not grow: %d -> %d", m0.Bytes, m.Bytes)
	}
	if m.Fsyncs < 2 {
		t.Fatalf("fsyncs %d, want ≥ 2 (one per SyncAlways commit)", m.Fsyncs)
	}
}
