package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

// Shard is one partition of a Store: its own directory under the data
// dir (`shard-<k>/`), holding at most one snapshot generation plus the
// write-ahead tail that follows it — exactly the single-log layout, one
// copy per ingest shard. Appends and fsyncs on different shards never
// contend: each Shard owns its own file, mutex and flusher, so the
// commit pipeline parallelises across partitions.
//
// A Shard persists only the series that hash to it (ShardIndex), which
// is the same routing the server's shard workers use — the worker that
// owns a series' appends is the only writer of its partition's log.
type Shard struct {
	db   *tsdb.Archive
	dir  string
	k, n int
	opts Options
	mm   *mmapstore.Dir // nil for the in-memory backend
	log  *Log

	// Incremental snapshot state (in-memory backend only). Compaction
	// normally rewrites a shard's whole owned series set; with dirty
	// tracking it writes a partial snapshot holding only the series that
	// changed since the last snapshot file, chained off the newest full
	// one. A boot that recovered a clean chain seeds this state from
	// disk (seedRecovered) with the replayed wal series pre-dirtied, so
	// the first post-boot compaction is already incremental; when
	// recovery found no usable baseline — first boot, migration, a
	// corrupt chain file — the first snapshot is full.
	mu      sync.Mutex
	dirty   map[string]struct{} // series changed since the last snapshot file
	hasFull bool                // a full snapshot of the current layout exists on disk
	chain   int                 // partial snapshots since that full one
}

// maxPartialChain bounds how many incremental snapshots may stack on
// one full snapshot before compaction forces a fresh full baseline —
// the cap on chain length recovery has to read (and on the leftover
// files a crash strands).
const maxPartialChain = 8

// shardDirName returns the directory name of partition k.
func shardDirName(k int) string {
	return "shard-" + strconv.Itoa(k)
}

// Index returns the shard's partition index.
func (sh *Shard) Index() int { return sh.k }

// Append writes one segment ahead of its apply to s. It must be called
// by the single goroutine that owns appends for s (the shard worker), so
// the recorded index matches the position the apply will use. The index
// counts finalized segments only: provisional (max-lag) tails are never
// logged or snapshotted, so replay positions must not see them.
func (sh *Shard) Append(s *tsdb.Series, seg core.Segment) error {
	sh.markDirty(s.Name())
	return sh.log.Append(s.Name(), s.Epsilon(), s.Constant(), s.FinalLen(), seg)
}

// markDirty records that name changed since the last snapshot file, so
// the next incremental snapshot must carry it.
func (sh *Shard) markDirty(name string) {
	sh.mu.Lock()
	sh.dirty[name] = struct{}{}
	sh.mu.Unlock()
}

// noteFull records that a full snapshot of this shard's current layout
// reached disk (rebaseline writes one during Open), so compaction may
// chain partials off it instead of starting with another full.
func (sh *Shard) noteFull() {
	sh.mu.Lock()
	sh.hasFull, sh.chain = true, 0
	clear(sh.dirty)
	sh.mu.Unlock()
}

// seedRecovered primes the shard's incremental-snapshot state from
// what recovery observed on disk: a chain that read cleanly and still
// anchors on a full snapshot remains a valid baseline, so the next
// compaction may chain another partial off it — covering the series
// wal replay re-applied, which arrive pre-dirtied here — instead of
// opening every boot with a full rewrite. A seed without a clean full
// baseline leaves the full-first rule in place.
func (sh *Shard) seedRecovered(seed chainSeed) {
	if !seed.clean || !seed.hasFull {
		return
	}
	sh.mu.Lock()
	sh.hasFull = true
	sh.chain = seed.chain
	for name := range seed.dirty {
		sh.dirty[name] = struct{}{}
	}
	sh.mu.Unlock()
}

// Commit is the ack barrier: under SyncAlways it returns only after the
// shard's log is fsynced. One Commit covers every Append since the last
// one, which is what makes group commit work — the worker batches all
// barriers queued since the last sync into a single call.
func (sh *Shard) Commit() error { return sh.log.Commit() }

// Sync flushes and fsyncs the shard's log regardless of policy.
func (sh *Shard) Sync() error { return sh.log.Sync() }

// TailBytes returns the current wal file's size, the per-shard
// compaction trigger.
func (sh *Shard) TailBytes() int64 { return sh.log.TailBytes() }

// Metrics snapshots the shard log's cumulative I/O counters.
func (sh *Shard) Metrics() LogMetrics { return sh.log.Metrics() }

// Rotate closes the shard's current wal file and opens the next
// sequence, returning the closed file's sequence — the argument for
// Snapshot once every record in it has been applied (the caller fences
// this shard's worker in between; other shards keep flowing).
func (sh *Shard) Rotate() (uint64, error) { return sh.log.Rotate() }

// ownedNames lists the archive's series that hash to this shard.
func (sh *Shard) ownedNames() []string {
	var names []string
	for _, name := range sh.db.Names() {
		if ShardIndex(name, sh.n) == sh.k {
			names = append(names, name)
		}
	}
	return names
}

// shedOwned lists the effective-ε control series whose base series this
// shard owns. Like rollup tiers they hash by a reserved name, so
// ownership resolves through the base — but unlike tiers their records
// are not derivable from anything else, so every baseline (snapshot or
// seal) must carry them or a restart would forget that degraded data is
// wider than its contract.
func (sh *Shard) shedOwned() []string {
	var names []string
	for _, name := range sh.db.ShedNames() {
		if base, ok := tsdb.ParseShedName(name); ok && ShardIndex(base, sh.n) == sh.k {
			names = append(names, name)
		}
	}
	return names
}

// pruneRetention applies the retention window to this shard's series,
// returning how many segments it dropped.
func (sh *Shard) pruneRetention() int {
	if sh.opts.Retain <= 0 {
		return 0
	}
	dropped := 0
	for _, name := range sh.ownedNames() {
		s, err := sh.db.Get(name)
		if err != nil {
			continue
		}
		if _, end, ok := s.Span(); ok {
			if n := s.DropBefore(end - sh.opts.Retain); n > 0 {
				dropped += n
				// The pruned series shrank relative to every file on disk;
				// an incremental snapshot that omitted it would let the old
				// copy resurrect the dropped segments on recovery.
				sh.markDirty(name)
			}
		}
	}
	return dropped
}

// Snapshot persists this shard's current state as the baseline for
// throughSeq and removes the shard's wal files (sequence ≤ throughSeq)
// and older generations it supersedes. Under the in-memory backend that
// baseline is a snapshot file — a full one covering every owned series,
// or, once a full baseline exists, an incremental one holding only the
// series dirtied since the last snapshot (compaction cost scales with
// what changed, not with archive size). Under the mmap backend every
// owned series' append tail is sealed into its extent store and a seal
// marker records the covered sequence. The caller must guarantee every
// record in those wal files has been applied to the archive — rotate,
// fence this shard's worker, then snapshot. With a retention window
// configured, out-of-window segments are dropped first, so they leave
// both the archive and the disk in the same stroke.
func (sh *Shard) Snapshot(throughSeq uint64) error {
	return sh.snapshot(throughSeq, false)
}

func (sh *Shard) snapshot(throughSeq uint64, forceFull bool) error {
	if n := sh.pruneRetention(); n > 0 {
		sh.opts.logf("wal: %s: retention dropped %d segments", shardDirName(sh.k), n)
	}
	sh.rollupOwned()
	if sh.mm != nil {
		if err := sh.sealOwned(); err != nil {
			return err
		}
		// Background extent compaction rides the same trigger as
		// sealing: opportunistic, and never a reason to fail the
		// snapshot — unmerged extents only cost lookup speed.
		if merged, err := sh.compactOwned(); err != nil {
			sh.opts.logf("wal: %s: extent compaction: %v", shardDirName(sh.k), err)
		} else if merged > 0 {
			sh.opts.logf("wal: %s: extent compaction merged %d extent runs", shardDirName(sh.k), merged)
		}
		if err := writeMarker(sh.dir, throughSeq, sh.opts); err != nil {
			return err
		}
	} else {
		names, full := sh.snapshotPlan(forceFull)
		write := writeSnapshot
		if !full {
			write = writePartial
			sh.opts.logf("wal: %s: incremental snapshot, %d dirty series", shardDirName(sh.k), len(names))
		}
		if err := write(sh.dir, throughSeq, sh.db, names, sh.opts); err != nil {
			// The baseline never advanced: put the planned names back so
			// the next attempt covers them again.
			sh.redirty(names)
			return err
		}
		sh.mu.Lock()
		if full {
			sh.hasFull, sh.chain = true, 0
		} else {
			sh.chain++
		}
		sh.mu.Unlock()
	}
	sh.removeObsolete(throughSeq)
	return nil
}

// snapshotPlan decides what the next baseline file covers — the whole
// owned series set, or only the dirty ones — and claims the dirty set
// either way (a series appended while the file is being written is
// simply marked dirty again for the next round; its wal records live
// past throughSeq, so nothing is lost in between). A full snapshot is
// forced until one exists for this run's layout, when the chain hit
// maxPartialChain, or when at least half the owned series are dirty —
// a partial that size saves little and still lengthens the chain.
func (sh *Shard) snapshotPlan(forceFull bool) (names []string, full bool) {
	owned := append(sh.ownedNames(), sh.shedOwned()...)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	full = forceFull || !sh.hasFull || sh.chain >= maxPartialChain || 2*len(sh.dirty) >= len(owned)
	if full {
		names = owned
	} else {
		names = make([]string, 0, len(sh.dirty))
		for name := range sh.dirty {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	clear(sh.dirty)
	return names, full
}

// redirty puts names back into the dirty set after a failed snapshot
// write.
func (sh *Shard) redirty(names []string) {
	sh.mu.Lock()
	for _, name := range names {
		sh.dirty[name] = struct{}{}
	}
	sh.mu.Unlock()
}

// rollupOwned extends the rollup tiers of every owned series with the
// coverage sealed since the last pass and, under the mmap backend,
// seals (and opportunistically compacts) the tiers' own append tails so
// the coarse extents persist alongside the base's. Tier data is derived
// — it is never written ahead to the wal, and a failed or skipped pass
// only delays coarse coverage until the next trigger — so errors are
// logged, never a reason to fail the snapshot.
func (sh *Shard) rollupOwned() {
	if len(sh.db.RollupMults()) == 0 {
		return
	}
	tiers, segs := 0, 0
	for _, name := range sh.ownedNames() {
		st, err := sh.db.Rollup(name)
		if err != nil {
			sh.opts.logf("wal: %s: rollup %s: %v", shardDirName(sh.k), name, err)
			continue
		}
		tiers += st.Tiers
		segs += st.Segments
	}
	if segs > 0 {
		sh.opts.logf("wal: %s: rollup extended %d tiers with %d segments",
			shardDirName(sh.k), tiers, segs)
	}
	if sh.mm == nil {
		return
	}
	for _, name := range sh.db.TierNames() {
		// A tier hashes by its own reserved name, not its base's, so
		// ownership is resolved through the base: the shard that builds a
		// tier also persists it.
		base, _, ok := tsdb.ParseRollupName(name)
		if !ok || ShardIndex(base, sh.n) != sh.k {
			continue
		}
		s, err := sh.db.Get(name)
		if err != nil {
			continue
		}
		if err := s.Seal(); err != nil {
			sh.opts.logf("wal: %s: seal tier of %s: %v", shardDirName(sh.k), base, err)
			continue
		}
		for r := 0; r < maxTierMerges; r++ {
			done, err := s.CompactStore()
			if err != nil {
				sh.opts.logf("wal: %s: compact tier of %s: %v", shardDirName(sh.k), base, err)
				break
			}
			if !done {
				break
			}
		}
	}
}

// maxTierMerges caps extent merges per tier per trigger, mirroring
// compactOwned's per-series cap.
const maxTierMerges = 4

// sealOwned folds every owned series' append tail into its extent
// store. The marker that makes the covered wal files deletable is only
// written once every series sealed cleanly. Effective-ε control series
// seal with the same strictness: their records live in the wal the
// marker makes deletable.
func (sh *Shard) sealOwned() error {
	for _, name := range append(sh.ownedNames(), sh.shedOwned()...) {
		s, err := sh.db.Get(name)
		if err != nil {
			continue
		}
		if err := s.Seal(); err != nil {
			return err
		}
	}
	return nil
}

// compactOwned runs background extent compaction over every owned
// series, up to a few merges each per trigger so one fragmented series
// cannot monopolise the snapshot pass. Returns how many runs merged.
func (sh *Shard) compactOwned() (int, error) {
	const maxMergesPerSeries = 4
	merged := 0
	for _, name := range sh.ownedNames() {
		s, err := sh.db.Get(name)
		if err != nil {
			continue
		}
		for r := 0; r < maxMergesPerSeries; r++ {
			done, err := s.CompactStore()
			if err != nil {
				return merged, err
			}
			if !done {
				break
			}
			merged++
		}
	}
	return merged, nil
}

// closeSnapshot ends the shard on a graceful drain: close the log,
// write a final snapshot covering everything — always a full one, so a
// clean shutdown collapses any incremental chain — and remove every wal
// file, leaving the shard directory holding exactly one snapshot.
func (sh *Shard) closeSnapshot() error {
	seq := sh.log.Seq()
	if err := sh.log.Close(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	return sh.snapshot(seq, true)
}

// close ends the shard without snapshotting (error paths; recovery will
// replay the tail).
func (sh *Shard) close() error {
	err := sh.log.Close()
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}

// removeObsolete deletes the shard's wal files with sequence ≤
// throughSeq and the baseline generations the newest one supersedes:
// under the mmap backend that is markers older than throughSeq plus
// every snapshot file (the extents carry the data now); under the
// in-memory backend, full snapshots older than the newest full one,
// incremental snapshots it covers (a full snapshot collapses the whole
// chain behind it; partials after it are the live chain and must stay
// until the next full generation), plus every marker (a leftover from a
// migrated extent run). Failures are logged: a leftover file costs
// replay time on the next boot, not correctness.
func (sh *Shard) removeObsolete(throughSeq uint64) {
	snaps, parts, wals, marks, err := scanDir(sh.dir, sh.opts)
	if err != nil {
		sh.opts.logf("wal: compaction scan: %v", err)
		return
	}
	remove := func(path string) {
		if err := os.Remove(path); err != nil {
			sh.opts.logf("wal: remove %s: %v", filepath.Base(path), err)
		}
	}
	for _, wf := range wals {
		if wf.seq <= throughSeq {
			remove(wf.path)
		}
	}
	var fullSeq uint64
	for _, sn := range snaps {
		if sn.seq > fullSeq {
			fullSeq = sn.seq
		}
	}
	for _, sn := range snaps {
		if sh.mm != nil || sn.seq < fullSeq {
			remove(sn.path)
		}
	}
	for _, pt := range parts {
		if sh.mm != nil || pt.seq <= fullSeq {
			remove(pt.path)
		}
	}
	for _, mk := range marks {
		if sh.mm == nil || mk.seq < throughSeq {
			remove(mk.path)
		}
	}
	syncDir(sh.dir, sh.opts)
}
