package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

// Shard is one partition of a Store: its own directory under the data
// dir (`shard-<k>/`), holding at most one snapshot generation plus the
// write-ahead tail that follows it — exactly the single-log layout, one
// copy per ingest shard. Appends and fsyncs on different shards never
// contend: each Shard owns its own file, mutex and flusher, so the
// commit pipeline parallelises across partitions.
//
// A Shard persists only the series that hash to it (ShardIndex), which
// is the same routing the server's shard workers use — the worker that
// owns a series' appends is the only writer of its partition's log.
type Shard struct {
	db   *tsdb.Archive
	dir  string
	k, n int
	opts Options
	mm   *mmapstore.Dir // nil for the in-memory backend
	log  *Log
}

// shardDirName returns the directory name of partition k.
func shardDirName(k int) string {
	return "shard-" + strconv.Itoa(k)
}

// Index returns the shard's partition index.
func (sh *Shard) Index() int { return sh.k }

// Append writes one segment ahead of its apply to s. It must be called
// by the single goroutine that owns appends for s (the shard worker), so
// the recorded index matches the position the apply will use. The index
// counts finalized segments only: provisional (max-lag) tails are never
// logged or snapshotted, so replay positions must not see them.
func (sh *Shard) Append(s *tsdb.Series, seg core.Segment) error {
	return sh.log.Append(s.Name(), s.Epsilon(), s.Constant(), s.FinalLen(), seg)
}

// Commit is the ack barrier: under SyncAlways it returns only after the
// shard's log is fsynced. One Commit covers every Append since the last
// one, which is what makes group commit work — the worker batches all
// barriers queued since the last sync into a single call.
func (sh *Shard) Commit() error { return sh.log.Commit() }

// Sync flushes and fsyncs the shard's log regardless of policy.
func (sh *Shard) Sync() error { return sh.log.Sync() }

// TailBytes returns the current wal file's size, the per-shard
// compaction trigger.
func (sh *Shard) TailBytes() int64 { return sh.log.TailBytes() }

// Metrics snapshots the shard log's cumulative I/O counters.
func (sh *Shard) Metrics() LogMetrics { return sh.log.Metrics() }

// Rotate closes the shard's current wal file and opens the next
// sequence, returning the closed file's sequence — the argument for
// Snapshot once every record in it has been applied (the caller fences
// this shard's worker in between; other shards keep flowing).
func (sh *Shard) Rotate() (uint64, error) { return sh.log.Rotate() }

// ownedNames lists the archive's series that hash to this shard.
func (sh *Shard) ownedNames() []string {
	var names []string
	for _, name := range sh.db.Names() {
		if ShardIndex(name, sh.n) == sh.k {
			names = append(names, name)
		}
	}
	return names
}

// pruneRetention applies the retention window to this shard's series,
// returning how many segments it dropped.
func (sh *Shard) pruneRetention() int {
	if sh.opts.Retain <= 0 {
		return 0
	}
	dropped := 0
	for _, name := range sh.ownedNames() {
		s, err := sh.db.Get(name)
		if err != nil {
			continue
		}
		if _, end, ok := s.Span(); ok {
			dropped += s.DropBefore(end - sh.opts.Retain)
		}
	}
	return dropped
}

// Snapshot persists this shard's current state as the baseline for
// throughSeq and removes the shard's wal files (sequence ≤ throughSeq)
// and older generations it supersedes. Under the in-memory backend that
// baseline is a snapshot file; under the mmap backend every owned
// series' append tail is sealed into its extent store and a seal marker
// records the covered sequence. The caller must guarantee every record
// in those wal files has been applied to the archive — rotate, fence
// this shard's worker, then snapshot. With a retention window
// configured, out-of-window segments are dropped first, so they leave
// both the archive and the disk in the same stroke.
func (sh *Shard) Snapshot(throughSeq uint64) error {
	if n := sh.pruneRetention(); n > 0 {
		sh.opts.logf("wal: %s: retention dropped %d segments", shardDirName(sh.k), n)
	}
	if sh.mm != nil {
		if err := sh.sealOwned(); err != nil {
			return err
		}
		if err := writeMarker(sh.dir, throughSeq, sh.opts); err != nil {
			return err
		}
	} else if err := writeSnapshot(sh.dir, throughSeq, sh.db, sh.ownedNames(), sh.opts); err != nil {
		return err
	}
	sh.removeObsolete(throughSeq)
	return nil
}

// sealOwned folds every owned series' append tail into its extent
// store. The marker that makes the covered wal files deletable is only
// written once every series sealed cleanly.
func (sh *Shard) sealOwned() error {
	for _, name := range sh.ownedNames() {
		s, err := sh.db.Get(name)
		if err != nil {
			continue
		}
		if err := s.Seal(); err != nil {
			return err
		}
	}
	return nil
}

// closeSnapshot ends the shard on a graceful drain: close the log, write
// a final snapshot covering everything, and remove every wal file —
// leaving the shard directory holding exactly one snapshot.
func (sh *Shard) closeSnapshot() error {
	seq := sh.log.Seq()
	if err := sh.log.Close(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	return sh.Snapshot(seq)
}

// close ends the shard without snapshotting (error paths; recovery will
// replay the tail).
func (sh *Shard) close() error {
	err := sh.log.Close()
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}

// removeObsolete deletes the shard's wal files with sequence ≤
// throughSeq and the baseline generations the newest one supersedes:
// under the mmap backend that is markers older than throughSeq plus
// every snapshot file (the extents carry the data now); under the
// in-memory backend, snapshots older than throughSeq plus every marker
// (a leftover from a migrated extent run). Failures are logged: a
// leftover file costs replay time on the next boot, not correctness.
func (sh *Shard) removeObsolete(throughSeq uint64) {
	snaps, wals, marks, err := scanDir(sh.dir, sh.opts)
	if err != nil {
		sh.opts.logf("wal: compaction scan: %v", err)
		return
	}
	remove := func(path string) {
		if err := os.Remove(path); err != nil {
			sh.opts.logf("wal: remove %s: %v", filepath.Base(path), err)
		}
	}
	for _, wf := range wals {
		if wf.seq <= throughSeq {
			remove(wf.path)
		}
	}
	for _, sn := range snaps {
		if sh.mm != nil || sn.seq < throughSeq {
			remove(sn.path)
		}
	}
	for _, mk := range marks {
		if sh.mm == nil || mk.seq < throughSeq {
			remove(mk.path)
		}
	}
	syncDir(sh.dir, sh.opts)
}
