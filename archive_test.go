package pla_test

import (
	"bytes"
	"io"
	"math"
	"testing"

	pla "github.com/pla-go/pla"
)

func TestFacadeArchiveFlow(t *testing.T) {
	signal := pla.SeaSurfaceTemperature()
	eps := []float64{0.05}

	arch := pla.NewArchive()
	f, err := pla.NewSlideFilter(eps)
	if err != nil {
		t.Fatal(err)
	}
	series, err := arch.Ingest("sst", f, signal)
	if err != nil {
		t.Fatal(err)
	}
	t0, t1, ok := series.Span()
	if !ok {
		t.Fatal("no span")
	}
	mn, err := series.Min(0, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := series.Max(0, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := pla.SignalRange(signal, 0)
	if lo < mn.Value-mn.Epsilon-1e-9 || hi > mx.Value+mx.Epsilon+1e-9 {
		t.Fatalf("bounds broken: [%v, %v] vs [%v±%v, %v±%v]", lo, hi, mn.Value, mn.Epsilon, mx.Value, mx.Epsilon)
	}

	var buf bytes.Buffer
	if _, err := arch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := pla.LoadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := back.Get("sst")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().Points != len(signal) {
		t.Fatalf("points lost: %+v", s2.Stats())
	}
}

func TestFacadeTransportFlow(t *testing.T) {
	signal := pla.SSTLike(800, 12)
	eps := []float64{0.1}
	pr, pw := io.Pipe()

	done := make(chan error, 1)
	segsCh := make(chan []pla.Segment, 1)
	go func() {
		rx, err := pla.NewReceiver(pr)
		if err != nil {
			done <- err
			return
		}
		err = rx.Run()
		segsCh <- rx.Segments()
		done <- err
	}()

	f, err := pla.NewSwingFilter(eps)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := pla.NewTransmitter(pw, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range signal {
		if err := tx.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	segs := <-segsCh
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	model, err := pla.Reconstruct(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pla.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		t.Fatal(err)
	}
	if tx.BytesSent() >= pla.RawSize(len(signal), 1) {
		t.Fatalf("no wire savings: %d bytes", tx.BytesSent())
	}
}

func TestFacadeSwingRecordingModes(t *testing.T) {
	signal := pla.RandomWalk(pla.WalkConfig{N: 1000, P: 0.5, MaxDelta: 3, Seed: 77})
	eps := []float64{1}
	for _, mode := range []pla.SwingRecording{pla.RecordMSE, pla.RecordMidline, pla.RecordLast} {
		f, err := pla.NewSwingFilter(eps, pla.WithSwingRecording(mode))
		if err != nil {
			t.Fatal(err)
		}
		segs, err := pla.Compress(f, signal)
		if err != nil {
			t.Fatal(err)
		}
		m, err := pla.Reconstruct(segs)
		if err != nil {
			t.Fatal(err)
		}
		if err := pla.CheckPrecision(signal, m, eps, 1e-6); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestFacadeConnectionGrid(t *testing.T) {
	signal := pla.RandomWalk(pla.WalkConfig{N: 1000, P: 0.5, MaxDelta: 3, Seed: 78})
	eps := []float64{1}
	noConn, err := pla.NewSlideFilter(eps, pla.WithConnectionGrid(0))
	if err != nil {
		t.Fatal(err)
	}
	full, err := pla.NewSlideFilter(eps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pla.Compress(noConn, signal); err != nil {
		t.Fatal(err)
	}
	if _, err := pla.Compress(full, signal); err != nil {
		t.Fatal(err)
	}
	if full.Stats().Recordings > noConn.Stats().Recordings {
		t.Fatalf("connections raised recordings: %d vs %d",
			full.Stats().Recordings, noConn.Stats().Recordings)
	}
}

func TestFacadeSWABAndBottomUp(t *testing.T) {
	var signal []pla.Point
	for j := 0; j < 200; j++ {
		tt := float64(j)
		signal = append(signal, pla.Point{T: tt, X: []float64{math.Abs(tt - 100)}})
	}
	segs := pla.BottomUp(signal, 0.5)
	if len(segs) != 2 {
		t.Fatalf("bottom-up on a V: %d segments", len(segs))
	}
	sw, err := pla.NewSWAB(pla.SWABConfig{
		MaxError:  0.5,
		NewFilter: func() (pla.Filter, error) { return pla.NewSwingFilter([]float64{0.5}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []pla.Segment
	for _, p := range signal {
		out, err := sw.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, out...)
	}
	tail, err := sw.Finish()
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, tail...)
	total := 0
	for _, s := range all {
		total += s.Points
	}
	if total != len(signal) {
		t.Fatalf("SWAB covered %d of %d", total, len(signal))
	}
}

func TestFacadeMonitor(t *testing.T) {
	m := pla.NewMonitor(nil)
	f, _ := pla.NewSwingFilter([]float64{1})
	if err := m.Register("s1", f); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 50; j++ {
		if err := m.Push("s1", pla.Point{T: float64(j), X: []float64{float64(j % 3)}}); err != nil {
			t.Fatal(err)
		}
	}
	stats, total := m.Snapshot()
	if len(stats) != 1 || total.Points != 50 {
		t.Fatalf("snapshot: %+v %+v", stats, total)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAdaptiveCoordinator(t *testing.T) {
	names := []string{"flat", "noisy"}
	c, err := pla.NewCoordinator(pla.AdaptiveConfig{
		Budget:  2,
		Streams: names,
		Period:  50,
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy := pla.RandomWalk(pla.WalkConfig{N: 500, P: 0.5, MaxDelta: 3, Seed: 9})
	for j := 0; j < 500; j++ {
		if err := c.Push("flat", pla.Point{T: float64(j), X: []float64{1}}); err != nil {
			t.Fatal(err)
		}
		if err := c.Push("noisy", noisy[j]); err != nil {
			t.Fatal(err)
		}
	}
	per, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pla.NewSumModel(2, per)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 500; j++ {
		got, ok := sum.At(float64(j))
		if !ok {
			t.Fatalf("t=%d uncovered", j)
		}
		want := 1 + noisy[j].X[0]
		if d := got - want; d > 2.0001 || d < -2.0001 {
			t.Fatalf("t=%d: sum error %v exceeds budget", j, d)
		}
	}
	if w := c.Widths(); w["noisy"] <= w["flat"] {
		t.Fatalf("budget did not favour the noisy stream: %v", w)
	}
}
