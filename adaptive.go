package pla

import (
	"github.com/pla-go/pla/internal/adaptive"
)

// Adaptive precision allocation (Olston et al., SIGMOD 2003 — the
// paper's reference [21]): a coordinator divides a global aggregate
// error budget E across many streams, Σ ε_i ≤ E, and periodically moves
// budget toward the streams that are hardest to compress.

// AdaptiveConfig parameterises an adaptive-precision coordinator.
type AdaptiveConfig = adaptive.Config

// Coordinator allocates a global precision budget across streams.
type Coordinator = adaptive.Coordinator

// SumModel is the aggregate view over the coordinator's streams: the
// reconstructed sum is within Budget of the true sum at covered times.
type SumModel = adaptive.SumModel

// NewCoordinator returns an adaptive-precision coordinator with the
// budget split uniformly across cfg.Streams.
func NewCoordinator(cfg AdaptiveConfig) (*Coordinator, error) {
	return adaptive.New(cfg)
}

// NewSumModel builds the aggregate view from Coordinator.Finish output.
func NewSumModel(budget float64, perStream map[string][]Segment) (*SumModel, error) {
	return adaptive.NewSumModel(budget, perStream)
}
