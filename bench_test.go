package pla_test

// One benchmark per figure of the paper's evaluation (Section 5). The
// throughput benches report ns/op for compressing the figure's workload
// once, plus the figure's headline metric (compression ratio or average
// error) via b.ReportMetric, so `go test -bench=.` regenerates both the
// performance and the quality numbers. BenchmarkFig13* are the per-point
// overhead measurements the figure actually plots.

import (
	"fmt"
	"testing"

	pla "github.com/pla-go/pla"
	"github.com/pla-go/pla/internal/experiments"
	"github.com/pla-go/pla/internal/gen"
)

var benchFilters = []string{"cache", "linear", "swing", "slide"}

// benchCompression compresses signal once per iteration with the named
// filter and reports the paper's compression ratio.
func benchCompression(b *testing.B, name string, signal []pla.Point, eps []float64) {
	b.Helper()
	var ratio float64
	for i := 0; i < b.N; i++ {
		f, err := experiments.NewFilter(name, eps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pla.Compress(f, signal); err != nil {
			b.Fatal(err)
		}
		ratio = f.Stats().CompressionRatio()
	}
	b.ReportMetric(ratio, "ratio")
	b.ReportMetric(float64(len(signal)), "points")
}

// BenchmarkFig06SSTGeneration regenerates the Figure 6 dataset.
func BenchmarkFig06SSTGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := gen.SeaSurfaceTemperature(); len(pts) != gen.SSTPoints {
			b.Fatal("bad SST length")
		}
	}
}

// BenchmarkFig07CompressionVsPrecision compresses the SST signal at the
// middle of Figure 7's sweep (ε = 1 % of range) with each filter.
func BenchmarkFig07CompressionVsPrecision(b *testing.B) {
	signal := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(signal, 0)
	eps := []float64{0.01 * (hi - lo)}
	for _, name := range benchFilters {
		b.Run(name, func(b *testing.B) { benchCompression(b, name, signal, eps) })
	}
}

// BenchmarkFig08AverageError runs the Figure 8 pipeline (compress,
// reconstruct, measure) at ε = 1 % of range and reports the average error
// as a percentage of the range.
func BenchmarkFig08AverageError(b *testing.B) {
	signal := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(signal, 0)
	eps := []float64{0.01 * (hi - lo)}
	for _, name := range benchFilters {
		b.Run(name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				v, err := experiments.AverageError(name, signal, eps)
				if err != nil {
					b.Fatal(err)
				}
				avg = 100 * v / (hi - lo)
			}
			b.ReportMetric(avg, "avgerr%")
		})
	}
}

// BenchmarkFig09Monotonicity compresses Figure 9's random walk at the two
// extreme monotonicity settings.
func BenchmarkFig09Monotonicity(b *testing.B) {
	for _, p := range []float64{0, 0.5} {
		signal := pla.RandomWalk(pla.WalkConfig{N: 10000, P: p, MaxDelta: 4, Seed: 900})
		for _, name := range benchFilters {
			b.Run(fmt.Sprintf("p=%.1f/%s", p, name), func(b *testing.B) {
				benchCompression(b, name, signal, []float64{1})
			})
		}
	}
}

// BenchmarkFig10DeltaMagnitude compresses Figure 10's random walk at a
// small and a large step magnitude.
func BenchmarkFig10DeltaMagnitude(b *testing.B) {
	for _, pct := range []float64{10, 1000} {
		signal := pla.RandomWalk(pla.WalkConfig{N: 10000, P: 0.5, MaxDelta: pct / 100, Seed: 1000})
		for _, name := range benchFilters {
			b.Run(fmt.Sprintf("x=%g%%/%s", pct, name), func(b *testing.B) {
				benchCompression(b, name, signal, []float64{1})
			})
		}
	}
}

// BenchmarkFig11Dimensionality compresses Figure 11's independent
// multi-dimensional walk at d = 5.
func BenchmarkFig11Dimensionality(b *testing.B) {
	const d = 5
	signal := pla.MultiWalk(pla.MultiWalkConfig{
		WalkConfig: pla.WalkConfig{N: 10000, P: 0.5, MaxDelta: 4, Seed: 1100},
		Dims:       d,
	})
	eps := pla.UniformEpsilon(d, 1)
	for _, name := range benchFilters {
		b.Run(name, func(b *testing.B) { benchCompression(b, name, signal, eps) })
	}
}

// BenchmarkFig12Correlation compresses Figure 12's correlated
// 5-dimensional walk at ρ = 0.7 (the paper's break-even region).
func BenchmarkFig12Correlation(b *testing.B) {
	const d = 5
	signal := pla.MultiWalk(pla.MultiWalkConfig{
		WalkConfig:  pla.WalkConfig{N: 10000, P: 0.5, MaxDelta: 4, Seed: 1200},
		Dims:        d,
		Correlation: 0.7,
	})
	eps := pla.UniformEpsilon(d, 1)
	for _, name := range benchFilters {
		b.Run(name, func(b *testing.B) { benchCompression(b, name, signal, eps) })
	}
}

// BenchmarkFig13Overhead is the paper's Figure 13 measurement: the
// steady-state cost of Push per data point, for every filter including
// the non-optimized slide, at ε = 1 % of the SST range. ns/op here is
// ns/point.
func BenchmarkFig13Overhead(b *testing.B) {
	base := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(base, 0)
	eps := []float64{0.01 * (hi - lo)}
	names := append(append([]string(nil), benchFilters...), "slide-nonopt")
	for _, name := range names {
		b.Run(name, func(b *testing.B) {
			f, err := experiments.NewFilter(name, eps)
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x[0] = base[i%len(base)].X[0]
				if _, err := f.Push(pla.Point{T: float64(i), X: x}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13OverheadWidePrecision repeats the overhead measurement at
// ε = 31.6 % of range, where filtering intervals get very long and the
// non-optimized slide's linear rescans dominate — the divergence Figure
// 13 is about.
func BenchmarkFig13OverheadWidePrecision(b *testing.B) {
	base := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(base, 0)
	eps := []float64{0.316 * (hi - lo)}
	for _, name := range []string{"swing", "slide", "slide-nonopt"} {
		b.Run(name, func(b *testing.B) {
			f, err := experiments.NewFilter(name, eps)
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x[0] = base[i%len(base)].X[0]
				if _, err := f.Push(pla.Point{T: float64(i), X: x}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSwingRecording compares the swing recording modes'
// end-to-end cost (the MSE sums are O(1), so the modes should tie).
func BenchmarkAblationSwingRecording(b *testing.B) {
	signal := pla.RandomWalk(pla.WalkConfig{N: 10000, P: 0.5, MaxDelta: 3, Seed: 70})
	eps := []float64{1}
	for _, mode := range []pla.SwingRecording{pla.RecordMSE, pla.RecordMidline, pla.RecordLast} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := pla.NewSwingFilter(eps, pla.WithSwingRecording(mode))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pla.Compress(f, signal); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConnectionGrid compares slide connection-search
// densities: compression gain (ratio metric) versus boundary-search cost.
func BenchmarkAblationConnectionGrid(b *testing.B) {
	signal := pla.RandomWalk(pla.WalkConfig{N: 10000, P: 0.5, MaxDelta: 3, Seed: 71})
	eps := []float64{1}
	for _, grid := range []int{0, 5, 17, 65} {
		b.Run(fmt.Sprintf("grid=%d", grid), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				f, err := pla.NewSlideFilter(eps, pla.WithConnectionGrid(grid))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pla.Compress(f, signal); err != nil {
					b.Fatal(err)
				}
				ratio = f.Stats().CompressionRatio()
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkAblationTangentSearch compares the linear and logarithmic
// hull-tangent searches inside the slide filter.
func BenchmarkAblationTangentSearch(b *testing.B) {
	signal := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(signal, 0)
	eps := []float64{0.1 * (hi - lo)}
	for _, variant := range []struct {
		name string
		opts []pla.SlideOption
	}{
		{"linear-scan", nil},
		{"binary-search", []pla.SlideOption{pla.WithBinaryTangentSearch()}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			f, err := pla.NewSlideFilter(eps, variant.opts...)
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x[0] = signal[i%len(signal)].X[0]
				if _, err := f.Push(pla.Point{T: float64(i), X: x}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireEncode measures the codec on a realistic segment stream.
func BenchmarkWireEncode(b *testing.B) {
	signal := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(signal, 0)
	eps := []float64{0.01 * (hi - lo)}
	f, _ := pla.NewSlideFilter(eps)
	segs, err := pla.Compress(f, signal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pla.Encode(discard{}, eps, false, segs); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
