// Sensorfleet: the paper's remote-monitoring scenario (Section 1) end to
// end over TCP — a plad server collects ε-filtered streams from a fleet
// of concurrent sensors into one archive, then answers range and
// aggregate queries with deterministic precision bands.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/tsdb"
)

func main() {
	// The repository: a sharded ingestion server over an in-memory
	// archive. Four workers; a series always lands on the same worker.
	srv, err := server.New(tsdb.New(), server.Config{Shards: 4, QueueDepth: 256})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("repository listening on %s\n\n", addr)

	// The fleet: ten sensors, each filtering locally with its own
	// precision contract so only ε-bounded segments cross the wire.
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			signal := gen.RandomWalk(gen.WalkConfig{N: 2000, P: 0.5, MaxDelta: 0.5, Seed: uint64(i + 1)})
			f, err := core.NewSwing([]float64{0.5})
			if err != nil {
				log.Fatal(err)
			}
			c, err := server.Dial(addr, fmt.Sprintf("turbine-%02d", i), f)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range signal {
				if err := c.Send(p); err != nil {
					log.Fatal(err)
				}
			}
			ack, err := c.Close()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("turbine-%02d: %d points → %d segments (%d B on the wire)\n",
				i, c.Stats().Points, ack.Applied, c.BytesSent())
		}(i)
	}
	wg.Wait()

	// The analyst: range and aggregate queries with precision bands.
	q, err := server.DialQuery(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %24s %24s\n", "series", "mean band", "max band")
	infos, err := q.Series()
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		mean, err := q.Mean(info.Name, 0, 0, 1999)
		if err != nil {
			log.Fatal(err)
		}
		max, err := q.Max(info.Name, 0, 0, 1999)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s [%10.3f, %10.3f] [%10.3f, %10.3f]\n",
			info.Name, mean.Lo(), mean.Hi(), max.Lo(), max.Hi())
	}
	q.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	m := srv.Metrics()
	fmt.Printf("\narchived %d segments (%d points) across %d sessions, %d B total\n",
		m.Segments, m.Points, m.TotalSessions, m.Bytes)
}
