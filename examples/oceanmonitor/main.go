// Oceanmonitor replays the paper's headline scenario: a buoy measuring
// sea surface temperature every 10 minutes must ship its readings over a
// power-constrained link. The example compresses the Figure 6 signal at
// several precision widths, shows the bytes actually sent over the wire
// for each filter, and proves the shore side reconstructs every sample
// within the agreed tolerance.
package main

import (
	"bytes"
	"fmt"
	"log"

	pla "github.com/pla-go/pla"
)

func main() {
	signal := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(signal, 0)
	fmt.Printf("buoy signal: %d samples, %.2f–%.2f °C (range %.2f °C)\n\n",
		len(signal), lo, hi, hi-lo)

	raw := pla.RawSize(len(signal), 1)
	fmt.Printf("unfiltered transmission: %d bytes\n\n", raw)

	for _, pct := range []float64{0.1, 1, 10} {
		eps := []float64{pct / 100 * (hi - lo)}
		fmt.Printf("precision width %.1f%% of range (ε = %.4f °C)\n", pct, eps[0])
		fmt.Printf("  %-8s %10s %8s %12s %9s\n", "filter", "recordings", "ratio", "wire bytes", "saved")

		for _, name := range []string{"cache", "linear", "swing", "slide"} {
			f, constant, err := makeFilter(name, eps)
			if err != nil {
				log.Fatal(err)
			}
			segs, err := pla.Compress(f, signal)
			if err != nil {
				log.Fatal(err)
			}

			// Ship the segments over the wire and rebuild them on shore.
			var wire bytes.Buffer
			sent, err := pla.Encode(&wire, eps, constant, segs)
			if err != nil {
				log.Fatal(err)
			}
			received, err := pla.Decode(&wire)
			if err != nil {
				log.Fatal(err)
			}
			model, err := pla.Reconstruct(received)
			if err != nil {
				log.Fatal(err)
			}
			if err := pla.CheckPrecision(signal, model, eps, 1e-6); err != nil {
				log.Fatalf("%s: shore-side guarantee broken: %v", name, err)
			}

			st := f.Stats()
			fmt.Printf("  %-8s %10d %8.2f %12d %8.1f%%\n",
				name, st.Recordings, st.CompressionRatio(), sent,
				100*(1-float64(sent)/float64(raw)))
		}
		fmt.Println()
	}
	fmt.Println("every reconstruction above satisfied the per-sample ε guarantee")
}

func makeFilter(name string, eps []float64) (pla.Filter, bool, error) {
	switch name {
	case "cache":
		f, err := pla.NewCacheFilter(eps)
		return f, true, err
	case "linear":
		f, err := pla.NewLinearFilter(eps)
		return f, false, err
	case "swing":
		f, err := pla.NewSwingFilter(eps)
		return f, false, err
	default:
		f, err := pla.NewSlideFilter(eps)
		return f, false, err
	}
}
