// Swabsegment shows the SWAB extension: the online
// sliding-window-and-bottom-up segmenter of Keogh et al., with this
// library's slide filter as its read-ahead mechanism (the combination the
// paper's related-work section suggests), compared against plain offline
// bottom-up segmentation and against the slide filter alone.
package main

import (
	"fmt"
	"log"

	pla "github.com/pla-go/pla"
)

func main() {
	// A day of noisy piece-wise linear telemetry.
	signal := pla.SSTLike(2000, 99)
	eps := []float64{0.05}

	// 1. The slide filter alone: guaranteed ε, maximal compression.
	slide, err := pla.NewSlideFilter(eps)
	if err != nil {
		log.Fatal(err)
	}
	slideSegs, err := pla.Compress(slide, signal)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline bottom-up: globally greedy least-squares segmentation.
	buSegs := pla.BottomUp(signal, 0.05)

	// 3. Online SWAB with the slide filter reading ahead.
	swab, err := pla.NewSWAB(pla.SWABConfig{
		MaxError:       0.05,
		BufferSegments: 6,
		NewFilter:      func() (pla.Filter, error) { return pla.NewSlideFilter(eps) },
	})
	if err != nil {
		log.Fatal(err)
	}
	var swabSegs []pla.Segment
	online := 0
	for _, p := range signal {
		out, err := swab.Push(p)
		if err != nil {
			log.Fatal(err)
		}
		online += len(out)
		swabSegs = append(swabSegs, out...)
	}
	tail, err := swab.Finish()
	if err != nil {
		log.Fatal(err)
	}
	swabSegs = append(swabSegs, tail...)

	fmt.Printf("%-24s %9s %s\n", "method", "segments", "notes")
	fmt.Printf("%-24s %9d guaranteed per-sample ε = %.2f\n", "slide filter", len(slideSegs), eps[0])
	fmt.Printf("%-24s %9d offline, RSS ≤ 0.05 per segment\n", "bottom-up (offline)", len(buSegs))
	fmt.Printf("%-24s %9d online, %d segments emitted before the stream ended\n",
		"SWAB(slide read-ahead)", len(swabSegs), online)

	mean := meanRSS(signal, swabSegs)
	fmt.Printf("\nSWAB mean residual sum of squares per segment: %.4f\n", mean)
}

// meanRSS recomputes each segment's residual sum of squares against the
// original samples it covers.
func meanRSS(signal []pla.Point, segs []pla.Segment) float64 {
	total, count := 0.0, 0
	j := 0
	for _, s := range segs {
		rss := 0.0
		for ; j < len(signal) && signal[j].T <= s.T1; j++ {
			d := signal[j].X[0] - s.At(0, signal[j].T)
			rss += d * d
		}
		total += rss
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
