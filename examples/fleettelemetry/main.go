// Fleettelemetry compresses correlated multi-dimensional telemetry — the
// Section 5.4 scenario. A vehicle reports five correlated channels
// (speed, rpm, two temperatures, battery); the example compares
// compressing them jointly as one 5-dimensional signal against
// compressing each channel independently (which must re-ship the time
// field per channel, the paper's (d+1)/2d overhead), and demonstrates the
// m_max_lag bound with a live lag measurement.
package main

import (
	"fmt"
	"log"

	pla "github.com/pla-go/pla"
)

const (
	dims = 5
	n    = 20000
	eps  = 1.0
)

func main() {
	for _, rho := range []float64{0.2, 0.5, 0.8, 0.95} {
		signal := pla.MultiWalk(pla.MultiWalkConfig{
			WalkConfig:  pla.WalkConfig{N: n, P: 0.5, MaxDelta: 4 * eps, Seed: 7},
			Dims:        dims,
			Correlation: rho,
		})

		// Joint compression: one 5-dimensional slide filter.
		joint, err := pla.NewSlideFilter(pla.UniformEpsilon(dims, eps))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := pla.Compress(joint, signal); err != nil {
			log.Fatal(err)
		}
		jointRatio := joint.Stats().CompressionRatio()

		// Independent compression: one 1-dimensional filter per channel.
		// Each recording must carry its own timestamp, so the effective
		// ratio shrinks by (d+1)/2d (Section 5.4).
		var indepRecordings int
		for d := 0; d < dims; d++ {
			ch := make([]pla.Point, len(signal))
			for j, p := range signal {
				ch[j] = pla.Point{T: p.T, X: []float64{p.X[d]}}
			}
			f, err := pla.NewSlideFilter([]float64{eps})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := pla.Compress(f, ch); err != nil {
				log.Fatal(err)
			}
			indepRecordings += f.Stats().Recordings
		}
		// Bytes shipped: joint recording = 1 time + d values; independent
		// recordings = 1 time + 1 value each. Normalise to value-slots.
		jointCost := joint.Stats().Recordings * (1 + dims)
		indepCost := indepRecordings * 2
		rawCost := n * (1 + dims)

		fmt.Printf("correlation %.2f: joint ratio %.2f  |  field-level compression: joint %.2fx, independent %.2fx → %s\n",
			rho, jointRatio,
			float64(rawCost)/float64(jointCost),
			float64(rawCost)/float64(indepCost),
			verdict(jointCost, indepCost))
	}

	// Bounded-lag operation: the dashboard must never trail the vehicle
	// by more than 50 samples.
	signal := pla.MultiWalk(pla.MultiWalkConfig{
		WalkConfig:  pla.WalkConfig{N: n, P: 0.5, MaxDelta: eps / 4, Seed: 8},
		Dims:        dims,
		Correlation: 0.9,
	})
	bounded, err := pla.NewSlideFilter(pla.UniformEpsilon(dims, eps), pla.WithSlideMaxLag(50))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := pla.MeasureLag(bounded, signal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith m_max_lag = 50: max update gap %d points, mean %.1f, %d updates, %d flushes\n",
		rep.MaxPoints, rep.MeanPoints, rep.Updates, bounded.Stats().LagFlushes)
}

func verdict(jointCost, indepCost int) string {
	if jointCost < indepCost {
		return "compress jointly"
	}
	return "compress independently"
}
