// Quickstart: compress a noisy stream with every filter, compare
// compression ratios, and verify the precision guarantee end to end.
package main

import (
	"fmt"
	"log"

	pla "github.com/pla-go/pla"
)

func main() {
	// A random-walk signal: 5000 points, symmetric steps up to 2 units.
	signal := pla.RandomWalk(pla.WalkConfig{N: 5000, P: 0.5, MaxDelta: 2, Seed: 42})

	// Tolerate up to ±1 unit of error on every sample.
	eps := []float64{1}

	filters := []struct {
		name string
		make func() (pla.Filter, error)
	}{
		{"cache", func() (pla.Filter, error) { return pla.NewCacheFilter(eps) }},
		{"linear", func() (pla.Filter, error) { return pla.NewLinearFilter(eps) }},
		{"swing", func() (pla.Filter, error) { return pla.NewSwingFilter(eps) }},
		{"slide", func() (pla.Filter, error) { return pla.NewSlideFilter(eps) }},
	}

	fmt.Printf("%-8s %10s %10s %8s %10s\n", "filter", "segments", "recordings", "ratio", "max error")
	for _, fl := range filters {
		f, err := fl.make()
		if err != nil {
			log.Fatal(err)
		}
		segs, err := pla.Compress(f, signal)
		if err != nil {
			log.Fatal(err)
		}

		// Receiver side: rebuild the signal and check the guarantee.
		model, err := pla.Reconstruct(segs)
		if err != nil {
			log.Fatal(err)
		}
		if err := pla.CheckPrecision(signal, model, eps, 1e-6); err != nil {
			log.Fatalf("%s broke the guarantee: %v", fl.name, err)
		}
		errStats := pla.Measure(signal, model)

		st := f.Stats()
		fmt.Printf("%-8s %10d %10d %8.2f %10.4f\n",
			fl.name, st.Segments, st.Recordings, st.CompressionRatio(), errStats.MaxAbs[0])
	}
	fmt.Println("\nevery sample is within ε = 1 of its reconstruction — guaranteed by construction")
}
