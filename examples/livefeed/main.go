// Livefeed wires the whole system together end to end: a sensor-side
// Transmitter filters raw samples and ships recordings over an in-memory
// connection; a server-side Receiver answers queries while the stream is
// still running; and on shutdown the received segments are archived to a
// tsdb file whose range aggregates come with guaranteed ±ε bounds.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	pla "github.com/pla-go/pla"
)

func main() {
	signal := pla.SeaSurfaceTemperature()
	eps := []float64{0.04} // ≈ 1 % of the signal range, in °C

	sensorEnd, serverEnd := net.Pipe()

	// Server: receive live, then archive.
	type serverResult struct {
		rx  *pla.Receiver
		err error
	}
	ready := make(chan *pla.Receiver, 1)
	done := make(chan serverResult, 1)
	go func() {
		rx, err := pla.NewReceiver(serverEnd)
		if err != nil {
			done <- serverResult{nil, err}
			return
		}
		ready <- rx
		done <- serverResult{rx, rx.Run()}
	}()

	// Sensor: filter and transmit.
	f, err := pla.NewSlideFilter(eps, pla.WithSlideMaxLag(200))
	if err != nil {
		log.Fatal(err)
	}
	tx, err := pla.NewTransmitter(sensorEnd, f)
	if err != nil {
		log.Fatal(err)
	}
	rx := <-ready
	for i, p := range signal {
		if err := tx.Send(p); err != nil {
			log.Fatal(err)
		}
		if i == len(signal)/2 {
			// Live query half-way through the stream.
			if segs := rx.Segments(); len(segs) > 0 {
				tq := segs[len(segs)-1].T1
				if x, ok := rx.At(tq); ok {
					fmt.Printf("live query at t=%.0f min (mid-stream): %.2f °C, %d segments so far\n",
						tq, x[0], len(segs))
				}
			}
		}
	}
	if err := tx.Close(); err != nil {
		log.Fatal(err)
	}
	sensorEnd.Close()
	res := <-done
	if res.err != nil {
		log.Fatal(res.err)
	}

	st := tx.Stats()
	fmt.Printf("transmitted %d bytes for %d samples (%.1fx over raw, compression ratio %.2f)\n",
		tx.BytesSent(), st.Points,
		float64(pla.RawSize(st.Points, 1))/float64(tx.BytesSent()),
		st.CompressionRatio())

	// Archive the received stream and query it with bounds.
	arch := pla.NewArchive()
	series, err := arch.Create("sst/buoy-1", eps, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := series.Append(res.rx.Segments()...); err != nil {
		log.Fatal(err)
	}

	t0, t1, _ := series.Span()
	day := 24 * 60.0
	for w := 0; w < 3; w++ {
		lo := t0 + float64(w)*day*2
		hi := lo + day*2
		if hi > t1 {
			hi = t1
		}
		mn, err := series.Min(0, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		mx, err := series.Max(0, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		mean, err := series.Mean(0, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window [%5.0f, %5.0f] min: min %.2f±%.2f  max %.2f±%.2f  mean %.2f±%.2f °C\n",
			lo, hi, mn.Value, mn.Epsilon, mx.Value, mx.Epsilon, mean.Value, mean.Epsilon)
	}

	path := filepath.Join(os.TempDir(), "livefeed.plaa")
	if err := arch.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("archived to %s (%d bytes vs %d raw)\n", path, info.Size(), pla.RawSize(len(signal), 1))

	back, err := pla.LoadArchiveFile(path)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := back.Get("sst/buoy-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded: %d segments, stats %+v\n", s2.Len(), s2.Stats())
	os.Remove(path)
}
