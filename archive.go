package pla

import (
	"io"

	"github.com/pla-go/pla/internal/transport"
	"github.com/pla-go/pla/internal/tsdb"
)

// Time-series archive — store filtered streams as segments and query them
// with deterministic error bounds (the paper's "repository for later
// offline analysis").

// Archive holds many named segment series; safe for concurrent use.
type Archive = tsdb.Archive

// Series is one stored stream with its precision contract.
type Series = tsdb.Series

// SeriesStats summarises a stored series.
type SeriesStats = tsdb.SeriesStats

// AggregateResult is a range statistic plus its guaranteed ±ε band.
type AggregateResult = tsdb.AggregateResult

// NewArchive returns an empty archive.
func NewArchive() *Archive { return tsdb.New() }

// LoadArchive reads an archive previously written with Archive.WriteTo or
// Archive.SaveFile.
func LoadArchive(r io.Reader) (*Archive, error) { return tsdb.ReadArchive(r) }

// LoadArchiveFile reads an archive file from disk.
func LoadArchiveFile(path string) (*Archive, error) { return tsdb.LoadFile(path) }

// Live transport — ship recordings over any connection and query the
// receiving side while the stream is still running.

// Transmitter filters samples and ships finalized segments immediately.
type Transmitter = transport.Transmitter

// Receiver incrementally decodes a stream into a live, queryable model.
type Receiver = transport.Receiver

// NewTransmitter writes the stream header for f's precision contract and
// returns a transmitter bound to w.
func NewTransmitter(w io.Writer, f Filter) (*Transmitter, error) {
	return transport.NewTransmitter(w, f)
}

// NewReceiver reads and validates a stream header from r.
func NewReceiver(r io.Reader) (*Receiver, error) {
	return transport.NewReceiver(r)
}
