package pla_test

import (
	"bytes"
	"context"
	"fmt"
	"net"

	pla "github.com/pla-go/pla"
)

// The canonical flow: compress a stream with the slide filter, rebuild it
// on the receiver side, and read a value back within ε.
func ExampleCompress() {
	// A ramp from 0 to 99 sampled at unit steps.
	signal := make([]pla.Point, 100)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{float64(i)}}
	}

	f, _ := pla.NewSlideFilter([]float64{0.5}) // ε = 0.5
	segs, _ := pla.Compress(f, signal)

	model, _ := pla.Reconstruct(segs)
	x, _ := model.Eval(42)
	fmt.Printf("segments: %d\n", len(segs))
	fmt.Printf("x(42) = %.1f\n", x[0])
	fmt.Printf("ratio: %.0f\n", f.Stats().CompressionRatio())
	// Output:
	// segments: 1
	// x(42) = 42.0
	// ratio: 50
}

// Streaming use: push points one at a time and collect segments as the
// filter finalizes them.
func ExampleSwing_Push() {
	f, _ := pla.NewSwingFilter([]float64{0.1})
	stream := []pla.Point{
		{T: 0, X: []float64{0}},
		{T: 1, X: []float64{1}},
		{T: 2, X: []float64{2}},
		{T: 3, X: []float64{-5}}, // direction change: closes the first segment
	}
	total := 0
	for _, p := range stream {
		segs, _ := f.Push(p)
		total += len(segs)
	}
	tail, _ := f.Finish()
	total += len(tail)
	fmt.Println("segments:", total)
	// Output:
	// segments: 2
}

// Shipping recordings over a wire and reading them back.
func ExampleEncode() {
	signal := make([]pla.Point, 50)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{3}}
	}
	eps := []float64{0.25}
	f, _ := pla.NewCacheFilter(eps)
	segs, _ := pla.Compress(f, signal)

	var wire bytes.Buffer
	n, _ := pla.Encode(&wire, eps, true, segs)
	back, _ := pla.Decode(&wire)

	fmt.Printf("sent %d bytes (raw would be %d)\n", n, pla.RawSize(len(signal), 1))
	fmt.Printf("decoded %d segment(s), value %.0f\n", len(back), back[0].X0[0])
	// Output:
	// sent 41 bytes (raw would be 800)
	// decoded 1 segment(s), value 3
}

// Archiving a compressed stream and querying it with guaranteed bounds.
func ExampleArchive() {
	signal := make([]pla.Point, 100)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{float64(i % 10)}}
	}
	arch := pla.NewArchive()
	f, _ := pla.NewSwingFilter([]float64{0.5})
	series, _ := arch.Ingest("sensor", f, signal)

	mx, _ := series.Max(0, 0, 99)
	fmt.Printf("max = %.1f ± %.1f\n", mx.Value, mx.Epsilon)
	// Output:
	// max = 9.0 ± 0.5
}

// Bounding the receiver lag with m_max_lag.
func ExampleWithSwingMaxLag() {
	// A perfect line would otherwise form one unbounded interval.
	signal := make([]pla.Point, 200)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{2 * float64(i)}}
	}
	f, _ := pla.NewSwingFilter([]float64{1}, pla.WithSwingMaxLag(50))
	rep, _ := pla.MeasureLag(f, signal)
	fmt.Println("max update gap:", rep.MaxPoints)
	// Output:
	// max update gap: 50
}

// exampleServer runs an in-process server over db on a loopback
// listener, returning its dial address. The examples below each speak
// one protocol feature against it.
func exampleServer(db *pla.Archive) (*pla.Server, string) {
	s, err := pla.NewServer(db, pla.ServerConfig{Shards: 1})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go s.Serve(ln)
	return s, ln.Addr().String()
}

// Streaming a sensor into plad and reading it back with a guaranteed
// band: only finalized segments cross the wire, and the final ack
// reports what the archive stored.
func ExampleDialServer() {
	s, addr := exampleServer(pla.NewArchive())
	defer s.Shutdown(context.Background())

	f, _ := pla.NewSwingFilter([]float64{0.5})
	c, _ := pla.DialServer(addr, "turbine-01", f)
	for i := 0; i < 100; i++ {
		c.Send(pla.Point{T: float64(i), X: []float64{float64(i)}})
	}
	ack, _ := c.Close() // blocks until the archive holds every segment

	q, _ := pla.DialQuery(addr)
	defer q.Close()
	mean, _ := q.Mean("turbine-01", 0, 0, 99)
	fmt.Printf("applied %d segment(s)\n", ack.Applied)
	fmt.Printf("mean = %.1f ± %.1f\n", mean.Value, mean.Epsilon)
	// Output:
	// applied 1 segment(s)
	// mean = 49.5 ± 0.5
}

// Segment-native aggregation: AGG answers closed-form from the
// segments (O(windows + edges), never O(points)), and the reply's
// bound composes the filter contract — ±ε·count for sum.
func ExampleQueryClient_Agg() {
	db := pla.NewArchive()
	f, _ := pla.NewSwingFilter([]float64{0.5})
	signal := make([]pla.Point, 100)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{float64(i)}}
	}
	db.Ingest("turbine-01", f, signal)
	s, addr := exampleServer(db)
	defer s.Shutdown(context.Background())

	q, _ := pla.DialQuery(addr)
	defer q.Close()
	sum, _ := q.Agg("sum", "turbine-01", 0, 0, 99)
	fmt.Printf("sum = %.0f ± %.0f over %d samples\n", sum.Value, sum.Bound, sum.Count)
	// Output:
	// sum = 4950 ± 50 over 100 samples
}

// Bound-aware tier selection: a query that tolerates a wider error
// bound is answered from a coarser rollup tier, reading far fewer
// segments, and the reply's bound reflects the tier that actually
// answered.
func ExampleQueryClient_AggBound() {
	db := pla.NewArchive()
	db.EnableRollups([]int{8}) // maintain an 8× precision tier
	f, _ := pla.NewSwingFilter([]float64{0.5})
	// A slow ramp with fast ±1.5 jitter: the jitter forces a segment
	// every few points at ε = 0.5, but vanishes inside the 8× tier's
	// widened tolerance.
	signal := make([]pla.Point, 400)
	for i := range signal {
		x := float64(i)/20 + 1.5*float64(i%2)
		signal[i] = pla.Point{T: float64(i), X: []float64{x}}
	}
	db.Ingest("turbine-01", f, signal)
	db.Rollup("turbine-01") // normally run by the compaction sweep

	s, addr := exampleServer(db)
	defer s.Shutdown(context.Background())
	q, _ := pla.DialQuery(addr)
	defer q.Close()

	exact, _ := q.Agg("avg", "turbine-01", 0, 0, 399)
	coarse, _ := q.AggBound("avg", "turbine-01", 0, 0, 399, 4)
	fmt.Printf("base: avg = %.1f ± %.1f (%d segments)\n", exact.Value, exact.Bound, exact.Segments)
	fmt.Printf("tier: avg = %.1f ± %.1f (%d segments)\n", coarse.Value, coarse.Bound, coarse.Segments)
	// Output:
	// base: avg = 10.7 ± 0.5 (399 segments)
	// tier: avg = 10.5 ± 4.0 (1 segments)
}
