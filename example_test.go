package pla_test

import (
	"bytes"
	"fmt"

	pla "github.com/pla-go/pla"
)

// The canonical flow: compress a stream with the slide filter, rebuild it
// on the receiver side, and read a value back within ε.
func ExampleCompress() {
	// A ramp from 0 to 99 sampled at unit steps.
	signal := make([]pla.Point, 100)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{float64(i)}}
	}

	f, _ := pla.NewSlideFilter([]float64{0.5}) // ε = 0.5
	segs, _ := pla.Compress(f, signal)

	model, _ := pla.Reconstruct(segs)
	x, _ := model.Eval(42)
	fmt.Printf("segments: %d\n", len(segs))
	fmt.Printf("x(42) = %.1f\n", x[0])
	fmt.Printf("ratio: %.0f\n", f.Stats().CompressionRatio())
	// Output:
	// segments: 1
	// x(42) = 42.0
	// ratio: 50
}

// Streaming use: push points one at a time and collect segments as the
// filter finalizes them.
func ExampleSwing_Push() {
	f, _ := pla.NewSwingFilter([]float64{0.1})
	stream := []pla.Point{
		{T: 0, X: []float64{0}},
		{T: 1, X: []float64{1}},
		{T: 2, X: []float64{2}},
		{T: 3, X: []float64{-5}}, // direction change: closes the first segment
	}
	total := 0
	for _, p := range stream {
		segs, _ := f.Push(p)
		total += len(segs)
	}
	tail, _ := f.Finish()
	total += len(tail)
	fmt.Println("segments:", total)
	// Output:
	// segments: 2
}

// Shipping recordings over a wire and reading them back.
func ExampleEncode() {
	signal := make([]pla.Point, 50)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{3}}
	}
	eps := []float64{0.25}
	f, _ := pla.NewCacheFilter(eps)
	segs, _ := pla.Compress(f, signal)

	var wire bytes.Buffer
	n, _ := pla.Encode(&wire, eps, true, segs)
	back, _ := pla.Decode(&wire)

	fmt.Printf("sent %d bytes (raw would be %d)\n", n, pla.RawSize(len(signal), 1))
	fmt.Printf("decoded %d segment(s), value %.0f\n", len(back), back[0].X0[0])
	// Output:
	// sent 41 bytes (raw would be 800)
	// decoded 1 segment(s), value 3
}

// Archiving a compressed stream and querying it with guaranteed bounds.
func ExampleArchive() {
	signal := make([]pla.Point, 100)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{float64(i % 10)}}
	}
	arch := pla.NewArchive()
	f, _ := pla.NewSwingFilter([]float64{0.5})
	series, _ := arch.Ingest("sensor", f, signal)

	mx, _ := series.Max(0, 0, 99)
	fmt.Printf("max = %.1f ± %.1f\n", mx.Value, mx.Epsilon)
	// Output:
	// max = 9.0 ± 0.5
}

// Bounding the receiver lag with m_max_lag.
func ExampleWithSwingMaxLag() {
	// A perfect line would otherwise form one unbounded interval.
	signal := make([]pla.Point, 200)
	for i := range signal {
		signal[i] = pla.Point{T: float64(i), X: []float64{2 * float64(i)}}
	}
	f, _ := pla.NewSwingFilter([]float64{1}, pla.WithSwingMaxLag(50))
	rep, _ := pla.MeasureLag(f, signal)
	fmt.Println("max update gap:", rep.MaxPoints)
	// Output:
	// max update gap: 50
}
