package pla

import (
	"io"

	"github.com/pla-go/pla/internal/encode"
)

// Encoder serialises segments into the compact pla wire format.
type Encoder = encode.Encoder

// Decoder reads segments back from the pla wire format.
type Decoder = encode.Decoder

// Wire-format errors.
var (
	// ErrWireFormat reports a malformed encoded stream.
	ErrWireFormat = encode.ErrFormat
	// ErrWireChain reports a connected segment that does not start at its
	// predecessor's end.
	ErrWireChain = encode.ErrChain
)

// NewEncoder writes a stream header for a signal with the given precision
// widths and returns an encoder; constant marks piece-wise constant
// (cache filter) output.
func NewEncoder(w io.Writer, eps []float64, constant bool) (*Encoder, error) {
	return encode.NewEncoder(w, eps, constant)
}

// NewDecoder reads and validates a stream header.
func NewDecoder(r io.Reader) (*Decoder, error) {
	return encode.NewDecoder(r)
}

// Encode writes a whole approximation in one call and returns the encoded
// size in bytes.
func Encode(w io.Writer, eps []float64, constant bool, segs []Segment) (int64, error) {
	return encode.EncodeAll(w, eps, constant, segs)
}

// Decode reads a whole approximation in one call.
func Decode(r io.Reader) ([]Segment, error) {
	d, err := encode.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return encode.ReadAll(d)
}

// RawSize returns the bytes needed to ship n points of dimensionality dim
// unfiltered — the baseline for byte-level compression figures.
func RawSize(n, dim int) int64 {
	return encode.RawSize(n, dim)
}
