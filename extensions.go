package pla

import (
	"github.com/pla-go/pla/internal/monitor"
	"github.com/pla-go/pla/internal/swab"
)

// SWAB extension (Keogh et al., ICDM 2001) — the segmentation framework
// the paper's related-work section says swing and slide can slot into.

// SWABConfig parameterises an online SWAB segmenter.
type SWABConfig = swab.Config

// SWABSegmenter is the online sliding-window-and-bottom-up segmenter.
type SWABSegmenter = swab.Segmenter

// NewSWAB returns an online SWAB segmenter whose read-ahead chunking is
// driven by any of this library's filters (cfg.NewFilter).
func NewSWAB(cfg SWABConfig) (*SWABSegmenter, error) { return swab.New(cfg) }

// BottomUp segments a whole signal offline by greedy bottom-up merging
// under the given summed-RSS threshold.
func BottomUp(pts []Point, maxError float64) []Segment { return swab.BottomUp(pts, maxError) }

// Multi-stream monitor — the "always-on monitoring" deployment of the
// paper's introduction.

// Monitor multiplexes many named streams over their filters; safe for
// concurrent use.
type Monitor = monitor.Monitor

// StreamStats pairs a stream name with its filter's counters.
type StreamStats = monitor.StreamStats

// SegmentSink receives finalized segments as monitored streams emit them.
type SegmentSink = monitor.SegmentSink

// NewMonitor returns an empty stream monitor; sink may be nil.
func NewMonitor(sink SegmentSink) *Monitor { return monitor.New(sink) }
