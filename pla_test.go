package pla_test

import (
	"bytes"
	"testing"

	pla "github.com/pla-go/pla"
)

// TestQuickstartFlow exercises the full public API surface the README
// advertises: generate → compress → reconstruct → verify → encode →
// decode.
func TestQuickstartFlow(t *testing.T) {
	signal := pla.SeaSurfaceTemperature()
	lo, hi := pla.SignalRange(signal, 0)
	eps := []float64{0.01 * (hi - lo)}

	f, err := pla.NewSlideFilter(eps)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := pla.Compress(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().CompressionRatio() <= 1 {
		t.Fatalf("ratio = %v", f.Stats().CompressionRatio())
	}
	model, err := pla.Reconstruct(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pla.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		t.Fatal(err)
	}
	st := pla.Measure(signal, model)
	if st.MaxAbs[0] > eps[0]*(1+1e-6) {
		t.Fatalf("max error %v exceeds ε %v", st.MaxAbs[0], eps[0])
	}

	var buf bytes.Buffer
	n, err := pla.Encode(&buf, eps, false, segs)
	if err != nil {
		t.Fatal(err)
	}
	if n >= pla.RawSize(len(signal), 1) {
		t.Fatalf("wire size %d not smaller than raw %d", n, pla.RawSize(len(signal), 1))
	}
	back, err := pla.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(segs) {
		t.Fatalf("decoded %d segments, want %d", len(back), len(segs))
	}
}

func TestFacadeConstructors(t *testing.T) {
	eps := pla.UniformEpsilon(2, 0.5)
	if len(eps) != 2 || eps[1] != 0.5 {
		t.Fatalf("eps = %v", eps)
	}
	if _, err := pla.NewCacheFilter(eps, pla.WithCacheMode(pla.CacheMean)); err != nil {
		t.Fatal(err)
	}
	if _, err := pla.NewLinearFilter(eps, pla.WithDisconnectedSegments()); err != nil {
		t.Fatal(err)
	}
	if _, err := pla.NewSwingFilter(eps, pla.WithSwingMaxLag(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := pla.NewSlideFilter(eps, pla.WithSlideMaxLag(10), pla.WithHullOptimization(false)); err != nil {
		t.Fatal(err)
	}
	if _, err := pla.NewSwingFilter(nil); err == nil {
		t.Fatal("empty eps accepted")
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	pts := pla.RandomWalk(pla.WalkConfig{N: 50, P: 0.5, MaxDelta: 2, Seed: 1})
	var buf bytes.Buffer
	if err := pla.WritePointsCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	back, err := pla.ReadPointsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) || back[7].X[0] != pts[7].X[0] {
		t.Fatal("CSV round trip mismatch")
	}

	f, _ := pla.NewSwingFilter([]float64{1})
	segs, err := pla.Compress(f, pts)
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := pla.WriteSegmentsCSV(&sb, segs); err != nil {
		t.Fatal(err)
	}
	segsBack, err := pla.ReadSegmentsCSV(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsBack) != len(segs) {
		t.Fatal("segment CSV round trip mismatch")
	}
}

func TestFacadeMeasureLag(t *testing.T) {
	signal := pla.SSTLike(300, 5)
	f, _ := pla.NewSwingFilter([]float64{5}, pla.WithSwingMaxLag(20))
	rep, err := pla.MeasureLag(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPoints > 20 {
		t.Fatalf("max lag %d exceeds bound", rep.MaxPoints)
	}
}

func TestFacadeMultiWalk(t *testing.T) {
	pts := pla.MultiWalk(pla.MultiWalkConfig{
		WalkConfig:  pla.WalkConfig{N: 100, P: 0.5, MaxDelta: 1, Seed: 2},
		Dims:        3,
		Correlation: 0.8,
	})
	if len(pts) != 100 || len(pts[0].X) != 3 {
		t.Fatalf("multiwalk shape: %d × %d", len(pts), len(pts[0].X))
	}
	f, _ := pla.NewSlideFilter(pla.UniformEpsilon(3, 1))
	segs, err := pla.Compress(f, pts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pla.Reconstruct(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := pla.CheckPrecision(pts, m, pla.UniformEpsilon(3, 1), 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestCountRecordingsFacade(t *testing.T) {
	x := []float64{0}
	segs := []pla.Segment{
		{T0: 0, T1: 1, X0: x, X1: x},
		{T0: 1, T1: 2, X0: x, X1: x, Connected: true},
	}
	if got := pla.CountRecordings(segs, false); got != 3 {
		t.Fatalf("recordings = %d", got)
	}
	if got := pla.CountRecordings(segs, true); got != 2 {
		t.Fatalf("constant recordings = %d", got)
	}
}
