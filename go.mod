module github.com/pla-go/pla

go 1.24
